//! The dist worker: solves one z-slab in lockstep with its neighbors.
//!
//! A worker connects to the coordinator, receives its job + slab
//! assignment, builds the *full* solver (coefficients depend on global
//! grid position), crops its slab, wires halo links to its z neighbors
//! and then runs periods on demand. Per time step it posts its boundary
//! planes, updates the interior rows while the sockets carry the halos,
//! and finishes the one boundary row per phase once the halo lands —
//! communication/computation overlap at step granularity.
//!
//! Every socket has a dedicated reader (and the halo links a dedicated
//! writer) thread, so the compute thread never blocks on a peer that
//! went away: all waits are timeout slices that observe the abort flag
//! and the job deadline.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use em_faults::{ConnFault, FaultInjector};
use em_field::{FieldKind, State};
use em_scenarios::ScenarioSpec;

use crate::decomp::Slab;
use crate::proto::{self, FrameError, Msg};
use crate::slab::{
    boundary_for, crop_state, extract_plane, inject_plane, local_exchange, phase_rows,
    SlabBoundary, E_HALO, H_HALO,
};

/// How long a worker polls between abort/deadline checks while blocked
/// on a peer.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// How a worker reaches its coordinator, plus optional wire faults.
pub struct WorkerConfig {
    /// Coordinator control address, `host:port`.
    pub connect: String,
    /// This worker's index in `0..workers`.
    pub index: usize,
    /// Chaos injector for the halo wire (bit flips, connection drops).
    pub faults: Option<Arc<FaultInjector>>,
}

/// One direction of a halo link: a writer thread draining `tx` and a
/// reader thread feeding `rx`, so posts never block the compute loop.
struct HaloLink {
    tx: Sender<Msg>,
    rx: Receiver<Result<Msg, String>>,
}

fn spawn_halo_link(
    stream: TcpStream,
    index: usize,
    faults: Option<Arc<FaultInjector>>,
) -> Result<HaloLink, String> {
    stream
        .set_nodelay(true)
        .map_err(|e| format!("halo link nodelay: {e}"))?;
    let (out_tx, out_rx) = std::sync::mpsc::channel::<Msg>();
    let (in_tx, in_rx) = std::sync::mpsc::channel::<Result<Msg, String>>();

    let mut w = stream
        .try_clone()
        .map_err(|e| format!("halo link clone: {e}"))?;
    std::thread::spawn(move || {
        while let Ok(msg) = out_rx.recv() {
            let step = match &msg {
                Msg::HaloE { step, .. } | Msg::HaloH { step, .. } => *step,
                _ => 0,
            };
            let mut bytes = proto::frame_bytes(msg.kind(), &msg.encode());
            if let Some(inj) = &faults {
                let ident = format!("dist-w{index}-s{step}");
                if inj.conn_fault(&ident) == ConnFault::DropMid {
                    // Injected worker death: sever the link mid-solve;
                    // the peer sees EOF and the coordinator aborts.
                    let _ = w.shutdown(std::net::Shutdown::Both);
                    return;
                }
                // Flips land on the framed bytes (after the checksum
                // was computed), so the receiver's integrity check —
                // not luck — catches them.
                inj.flip_bit(&mut bytes, &ident);
            }
            if w.write_all(&bytes).and_then(|_| w.flush()).is_err() {
                return;
            }
        }
    });

    let mut r = stream;
    std::thread::spawn(move || loop {
        match proto::recv(&mut r) {
            Ok(msg) => {
                if in_tx.send(Ok(msg)).is_err() {
                    return;
                }
            }
            Err(FrameError::Eof) => {
                let _ = in_tx.send(Err("halo link closed by peer".to_string()));
                return;
            }
            Err(e) => {
                let _ = in_tx.send(Err(format!("halo link: {e}")));
                return;
            }
        }
    });

    Ok(HaloLink {
        tx: out_tx,
        rx: in_rx,
    })
}

/// Wait for one halo plane of the expected kind and step ordinal.
fn wait_halo(
    link: &HaloLink,
    kind: FieldKind,
    step: u32,
    stop: &AtomicBool,
    deadline: Option<Instant>,
) -> Result<Vec<u8>, String> {
    loop {
        if stop.load(Ordering::SeqCst) {
            return Err(format!(
                "{} abort requested",
                mwd_core::cancel::CANCELLED_PREFIX
            ));
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(format!(
                    "{} deadline expired waiting for a halo plane",
                    mwd_core::cancel::TIMEOUT_PREFIX
                ));
            }
        }
        match link.rx.recv_timeout(WAIT_SLICE) {
            Ok(Ok(Msg::HaloE { step: s, data })) if kind == FieldKind::E => {
                if s != step {
                    return Err(format!("halo step skew: got E step {s}, expected {step}"));
                }
                return Ok(data);
            }
            Ok(Ok(Msg::HaloH { step: s, data })) if kind == FieldKind::H => {
                if s != step {
                    return Err(format!("halo step skew: got H step {s}, expected {step}"));
                }
                return Ok(data);
            }
            Ok(Ok(other)) => {
                return Err(format!(
                    "unexpected message on the halo link: kind {}",
                    other.kind()
                ))
            }
            Ok(Err(e)) => return Err(e),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return Err("halo link closed".to_string()),
        }
    }
}

/// Wait for the next control message.
fn wait_ctrl(rx: &Receiver<Result<Msg, String>>, deadline: Option<Instant>) -> Result<Msg, String> {
    loop {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(format!(
                    "{} deadline expired waiting for the coordinator",
                    mwd_core::cancel::TIMEOUT_PREFIX
                ));
            }
        }
        match rx.recv_timeout(WAIT_SLICE) {
            Ok(msg) => return msg,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err("control stream reader exited".to_string())
            }
        }
    }
}

struct SlabJob {
    state: State,
    boundary: SlabBoundary,
    spp: usize,
    threads: usize,
    slab: Slab,
    has_lower: bool,
    has_upper: bool,
}

/// One full time step with overlapped halo exchange. Returns the wait
/// seconds spent blocked on halos and bumps `exchanges` per applied
/// plane.
#[allow(clippy::too_many_arguments)]
fn step_once(
    job: &mut SlabJob,
    down: Option<&HaloLink>,
    up: Option<&HaloLink>,
    step: u32,
    stop: &AtomicBool,
    deadline: Option<Instant>,
    exchanges: &mut u64,
    waits: &mut Vec<f64>,
) -> Result<(), String> {
    let nzl = job.slab.nz;

    // ---- H phase (reads E at z-1). Post our top E plane up first: the
    // upper neighbor's bottom row needs it, and our E arrays stay
    // frozen through the whole H phase.
    local_exchange(&mut job.state, job.boundary, FieldKind::E);
    if let Some(link) = up {
        let plane = extract_plane(&job.state.fields, &E_HALO, nzl as isize - 1);
        link.tx
            .send(Msg::HaloE { step, data: plane })
            .map_err(|_| "halo writer exited".to_string())?;
    }
    let h_lo = usize::from(job.has_lower);
    phase_rows(&mut job.state, FieldKind::H, h_lo, nzl, job.threads);
    if let Some(link) = down {
        let t0 = Instant::now();
        let plane = wait_halo(link, FieldKind::E, step, stop, deadline)?;
        waits.push(t0.elapsed().as_secs_f64());
        inject_plane(&mut job.state.fields, &E_HALO, -1, &plane)?;
        *exchanges += 1;
        phase_rows(&mut job.state, FieldKind::H, 0, 1, job.threads);
    }

    // ---- E phase (reads H at z+1, post-H-phase values). Our bottom H
    // row is final now; ship it down before updating any E row.
    local_exchange(&mut job.state, job.boundary, FieldKind::H);
    if let Some(link) = down {
        let plane = extract_plane(&job.state.fields, &H_HALO, 0);
        link.tx
            .send(Msg::HaloH { step, data: plane })
            .map_err(|_| "halo writer exited".to_string())?;
    }
    let e_hi = nzl - usize::from(job.has_upper);
    phase_rows(&mut job.state, FieldKind::E, 0, e_hi, job.threads);
    if let Some(link) = up {
        let t0 = Instant::now();
        let plane = wait_halo(link, FieldKind::H, step, stop, deadline)?;
        waits.push(t0.elapsed().as_secs_f64());
        inject_plane(&mut job.state.fields, &H_HALO, nzl as isize, &plane)?;
        *exchanges += 1;
        phase_rows(&mut job.state, FieldKind::E, nzl - 1, nzl, job.threads);
    }
    Ok(())
}

/// Accept one halo connection with abort/deadline checks.
fn accept_halo(
    listener: &TcpListener,
    stop: &AtomicBool,
    deadline: Option<Instant>,
) -> Result<TcpStream, String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("halo listener nonblocking: {e}"))?;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Err("abort requested while waiting for the upper neighbor".to_string());
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err("timeout: upper neighbor never connected".to_string());
            }
        }
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false)
                    .map_err(|e| format!("halo stream blocking: {e}"))?;
                return Ok(s);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("halo accept failed: {e}")),
        }
    }
}

/// Run one worker to completion. Returns `Ok` on a clean finish or a
/// coordinator-requested abort; `Err` carries the failure the worker
/// also reported upstream as a `WorkerErr`.
pub fn run_worker(cfg: &WorkerConfig) -> Result<(), String> {
    let control = TcpStream::connect(&cfg.connect)
        .map_err(|e| format!("cannot reach the coordinator at {}: {e}", cfg.connect))?;
    control
        .set_nodelay(true)
        .map_err(|e| format!("control nodelay: {e}"))?;
    let mut ctrl_w = control
        .try_clone()
        .map_err(|e| format!("control clone: {e}"))?;
    let result = run_inner(cfg, &control, &mut ctrl_w);
    if let Err(e) = &result {
        let _ = proto::send(
            &mut ctrl_w,
            &Msg::WorkerErr {
                index: cfg.index as u32,
                message: e.clone(),
            },
        );
    }
    result
}

fn run_inner(
    cfg: &WorkerConfig,
    control: &TcpStream,
    ctrl_w: &mut TcpStream,
) -> Result<(), String> {
    proto::send(
        ctrl_w,
        &Msg::Hello {
            index: cfg.index as u32,
        },
    )?;

    // Control reader thread: decouples the compute loop from the
    // socket so Abort (and coordinator death) interrupts halo waits.
    let stop = Arc::new(AtomicBool::new(false));
    let (ctrl_tx, ctrl_rx) = std::sync::mpsc::channel::<Result<Msg, String>>();
    {
        let mut r = control
            .try_clone()
            .map_err(|e| format!("control clone: {e}"))?;
        let stop = stop.clone();
        std::thread::spawn(move || loop {
            match proto::recv(&mut r) {
                Ok(msg) => {
                    if matches!(msg, Msg::Abort { .. }) {
                        stop.store(true, Ordering::SeqCst);
                    }
                    let end = matches!(msg, Msg::Abort { .. } | Msg::Finish);
                    if ctrl_tx.send(Ok(msg)).is_err() || end {
                        return;
                    }
                }
                Err(e) => {
                    stop.store(true, Ordering::SeqCst);
                    let _ = ctrl_tx.send(Err(format!("control stream: {e}")));
                    return;
                }
            }
        });
    }

    // The assignment must arrive promptly; a coordinator that died
    // before assigning must not leave an immortal worker behind.
    let setup_dl = Some(Instant::now() + Duration::from_secs(60));
    let assign = match wait_ctrl(&ctrl_rx, setup_dl)? {
        Msg::Assign {
            index,
            workers,
            z0,
            nz_local,
            threads,
            job_index,
            deadline_ms,
            spec_toml,
        } => {
            if index as usize != cfg.index {
                return Err(format!(
                    "assignment for worker {index} delivered to worker {}",
                    cfg.index
                ));
            }
            (
                workers as usize,
                Slab {
                    z0: z0 as usize,
                    nz: nz_local as usize,
                },
                threads as usize,
                job_index as usize,
                deadline_ms,
                spec_toml,
            )
        }
        Msg::Abort { .. } => return Ok(()),
        other => return Err(format!("expected Assign, got kind {}", other.kind())),
    };
    let (workers, slab, threads, job_index, deadline_ms, spec_toml) = assign;
    let deadline = (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));

    let spec = ScenarioSpec::from_toml_str(&spec_toml)?;
    spec.validate()?;
    let jobs = spec.jobs();
    let sjob = jobs
        .get(job_index)
        .ok_or_else(|| format!("job index {job_index} out of range ({} jobs)", jobs.len()))?;
    let boundary = boundary_for(&spec.engine)?;

    // The coefficient build is position-dependent (PML profiles, the
    // source plane, layered scenes), so build the full grid and crop.
    let solver = spec.build_solver(sjob)?;
    let spp = solver.steps_per_period();
    let state = crop_state(&solver.state, slab);
    drop(solver);

    let has_lower = cfg.index > 0;
    let has_upper = cfg.index + 1 < workers;

    // Halo wiring: every non-top worker listens for its upper neighbor;
    // the coordinator relays the port to that neighbor, which connects
    // down. Lower link first (ConnectDown arrives on the control
    // stream), then the blocking accept.
    let listener = if has_upper {
        let l = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("cannot bind a halo listener: {e}"))?;
        let port = l
            .local_addr()
            .map_err(|e| format!("halo listener addr: {e}"))?
            .port();
        proto::send(ctrl_w, &Msg::ListenPort { port })?;
        Some(l)
    } else {
        None
    };
    let down = if has_lower {
        let port = match wait_ctrl(&ctrl_rx, deadline)? {
            Msg::ConnectDown { port } => port,
            Msg::Abort { .. } => return Ok(()),
            other => return Err(format!("expected ConnectDown, got kind {}", other.kind())),
        };
        let s = TcpStream::connect(("127.0.0.1", port))
            .map_err(|e| format!("cannot reach the lower neighbor on port {port}: {e}"))?;
        Some(spawn_halo_link(s, cfg.index, cfg.faults.clone())?)
    } else {
        None
    };
    let up = match &listener {
        Some(l) => {
            let s = accept_halo(l, &stop, deadline)?;
            Some(spawn_halo_link(s, cfg.index, cfg.faults.clone())?)
        }
        None => None,
    };

    proto::send(ctrl_w, &Msg::Ready)?;

    let mut job = SlabJob {
        state,
        boundary,
        spp,
        threads: threads.max(1),
        slab,
        has_lower,
        has_upper,
    };
    let mut step: u32 = 0;
    let mut period: u32 = 0;
    loop {
        match wait_ctrl(&ctrl_rx, deadline)? {
            Msg::Continue => {
                period += 1;
                let mut exchanges = 0u64;
                let mut waits = Vec::new();
                for _ in 0..job.spp {
                    step_once(
                        &mut job,
                        down.as_ref(),
                        up.as_ref(),
                        step,
                        &stop,
                        deadline,
                        &mut exchanges,
                        &mut waits,
                    )?;
                    step += 1;
                }
                let fields = crate::slab::encode_fields(&job.state.fields);
                proto::send(
                    ctrl_w,
                    &Msg::PeriodDone {
                        period,
                        exchanges,
                        wait_secs: waits,
                        fields,
                    },
                )?;
            }
            Msg::Finish | Msg::Abort { .. } => return Ok(()),
            other => return Err(format!("unexpected control message kind {}", other.kind())),
        }
    }
}
