//! The built-in scenario catalog.
//!
//! Six diverse workloads, all expressed as [`ScenarioSpec`] data and all
//! routed through the same [`SolverBuilder`](em_solver::SolverBuilder)
//! path as user-authored scenario files:
//!
//! | name               | what it exercises                                   |
//! |--------------------|-----------------------------------------------------|
//! | `solar-cell`       | the paper's Fig. 1 tandem cell, 3-wavelength sweep  |
//! | `silver-nanowire`  | plasmonics: `Re(eps) < 0` forcing the back iteration|
//! | `bragg-mirror`     | quarter-wave dielectric stack, MWD engine           |
//! | `vacuum-slab`      | bare-vacuum calibration (plane-wave sanity)         |
//! | `photonic-grating` | high-contrast grating, periodic-x MWD engine        |
//! | `thin-absorber`    | thin a-Si film absorption over a 4-point sweep      |

use crate::spec::{
    ConvergenceDecl, EngineDecl, GridSpec, LayerDecl, OutputsDecl, PhysicsSpec, PmlDecl,
    ScenarioSpec, SceneDecl, SlabDecl, SourceDecl, SphereDecl, SweepDecl, SweepPoint,
};

/// The paper's motivating application (Fig. 1): the tandem thin-film
/// solar cell, swept over three visible wavelengths exactly like the
/// pre-scenario `examples/solar_cell.rs` did.
pub fn solar_cell() -> ScenarioSpec {
    let (nx, ny, nz) = (24usize, 24usize, 72usize);
    let z = |f: f64| (f * nz as f64) as usize;
    ScenarioSpec {
        name: "solar-cell".to_string(),
        description: "tandem thin-film solar cell (paper Fig. 1), visible-spectrum sweep"
            .to_string(),
        grid: GridSpec { nx, ny, nz },
        physics: PhysicsSpec {
            lambda_cells: 11.0,
            lambda_nm: 550.0,
            cfl: 0.95,
        },
        pml: Some(PmlDecl::with_thickness(8)),
        source: Some(SourceDecl::x_polarized(nz - 12, 1.0)),
        scene: SceneDecl::Preset {
            preset: "tandem-solar-cell".to_string(),
        },
        engine: EngineDecl::NaivePeriodicXY,
        convergence: ConvergenceDecl {
            tol: 2e-2,
            max_periods: 60,
        },
        sweep: Some(SweepDecl {
            lambdas: vec![
                SweepPoint {
                    nm: 450.0,
                    cells: 9.0,
                },
                SweepPoint {
                    nm: 550.0,
                    cells: 11.0,
                },
                SweepPoint {
                    nm: 650.0,
                    cells: 13.0,
                },
            ],
        }),
        workers: 1,
        outputs: OutputsDecl {
            intensity_profile: false,
            absorption: vec![
                SlabDecl {
                    name: "a-Si".to_string(),
                    z_lo: z(0.48),
                    z_hi: z(0.62),
                },
                SlabDecl {
                    name: "uc-Si".to_string(),
                    z_lo: z(0.20),
                    z_hi: z(0.48),
                },
                SlabDecl {
                    name: "Ag".to_string(),
                    z_lo: 0,
                    z_hi: z(0.12),
                },
            ],
        },
    }
}

/// Plasmonics around a silver nanowire (paper ref. [10]): a chain of
/// overlapping Ag spheres whose negative permittivity forces the Eq. 5
/// back iteration. Geometry matches the pre-scenario example.
pub fn silver_nanowire() -> ScenarioSpec {
    let n = 24usize;
    let spheres = (0..n)
        .map(|j| SphereDecl {
            material: "Ag".to_string(),
            center: [n as f64 / 2.0, j as f64 + 0.5, n as f64 * 0.45],
            radius: n as f64 * 0.12,
        })
        .collect();
    ScenarioSpec {
        name: "silver-nanowire".to_string(),
        description: "silver nanowire in vacuum; negative permittivity drives the back iteration"
            .to_string(),
        grid: GridSpec {
            nx: n,
            ny: n,
            nz: 2 * n,
        },
        physics: PhysicsSpec {
            lambda_cells: 10.0,
            lambda_nm: 550.0,
            cfl: 0.95,
        },
        pml: Some(PmlDecl::with_thickness(6)),
        source: Some(SourceDecl::x_polarized(2 * n - 10, 1.0)),
        scene: SceneDecl::Explicit {
            materials: vec!["vacuum".to_string(), "Ag".to_string()],
            background: "vacuum".to_string(),
            layers: Vec::new(),
            spheres,
        },
        engine: EngineDecl::NaivePeriodicXY,
        convergence: ConvergenceDecl {
            tol: 1e-3,
            max_periods: 8,
        },
        sweep: None,
        workers: 1,
        outputs: OutputsDecl {
            intensity_profile: false,
            absorption: vec![SlabDecl {
                name: "wire".to_string(),
                z_lo: 7,
                z_hi: 14,
            }],
        },
    }
}

/// A quarter-wave Bragg mirror: six TCO/glass bilayers on a glass
/// substrate, run on the MWD engine.
pub fn bragg_mirror() -> ScenarioSpec {
    let lambda_cells = 12.0;
    let d_hi = lambda_cells / (4.0 * 1.9); // quarter wave in TCO (n = 1.9)
    let d_lo = lambda_cells / (4.0 * 1.5); // quarter wave in glass (n = 1.5)
    let mut layers = vec![LayerDecl::flat("glass", 0.0, 16.0)];
    let mut zc = 16.0;
    for _ in 0..6 {
        layers.push(LayerDecl::flat("TCO", zc, zc + d_hi));
        zc += d_hi;
        layers.push(LayerDecl::flat("glass", zc, zc + d_lo));
        zc += d_lo;
    }
    ScenarioSpec {
        name: "bragg-mirror".to_string(),
        description: "quarter-wave TCO/glass Bragg mirror stack on the MWD engine".to_string(),
        grid: GridSpec {
            nx: 16,
            ny: 16,
            nz: 96,
        },
        physics: PhysicsSpec {
            lambda_cells,
            lambda_nm: 550.0,
            cfl: 0.95,
        },
        pml: Some(PmlDecl::with_thickness(8)),
        source: Some(SourceDecl::x_polarized(80, 1.0)),
        scene: SceneDecl::Explicit {
            materials: vec!["vacuum".to_string(), "glass".to_string(), "TCO".to_string()],
            background: "vacuum".to_string(),
            layers,
            spheres: Vec::new(),
        },
        engine: EngineDecl::Mwd {
            dw: 4,
            bz: 2,
            tg_x: 1,
            tg_z: 1,
            tg_c: 3,
            groups: 2,
        },
        convergence: ConvergenceDecl {
            tol: 1e-2,
            max_periods: 40,
        },
        sweep: None,
        workers: 1,
        outputs: OutputsDecl {
            intensity_profile: true,
            absorption: vec![SlabDecl {
                name: "mirror".to_string(),
                z_lo: 16,
                z_hi: 38,
            }],
        },
    }
}

/// Bare vacuum with PML and a source sheet: the calibration slab every
/// engine must turn into a clean travelling plane wave.
pub fn vacuum_slab() -> ScenarioSpec {
    ScenarioSpec {
        name: "vacuum-slab".to_string(),
        description: "bare-vacuum calibration slab (travelling plane wave)".to_string(),
        grid: GridSpec {
            nx: 8,
            ny: 8,
            nz: 64,
        },
        physics: PhysicsSpec {
            lambda_cells: 12.0,
            lambda_nm: 550.0,
            cfl: 0.95,
        },
        pml: Some(PmlDecl::with_thickness(8)),
        source: Some(SourceDecl::x_polarized(32, 1.0)),
        scene: SceneDecl::vacuum(),
        engine: EngineDecl::NaivePeriodicXY,
        convergence: ConvergenceDecl {
            tol: 1e-2,
            max_periods: 150,
        },
        sweep: None,
        workers: 1,
        outputs: OutputsDecl {
            intensity_profile: true,
            absorption: Vec::new(),
        },
    }
}

/// A high-contrast photonic grating: a-Si bars (chains of overlapping
/// spheres along y) over a glass substrate, on the loop-peeled
/// periodic-x MWD engine — the physically periodic direction.
pub fn photonic_grating() -> ScenarioSpec {
    let (nx, ny, nz) = (24usize, 24usize, 48usize);
    let mut spheres = Vec::new();
    for &bar_x in &[4.0, 12.0, 20.0] {
        for j in 0..ny {
            spheres.push(SphereDecl {
                material: "a-Si:H".to_string(),
                center: [bar_x, j as f64 + 0.5, 14.0],
                radius: 2.5,
            });
        }
    }
    ScenarioSpec {
        name: "photonic-grating".to_string(),
        description: "high-contrast a-Si grating bars on glass, periodic-x MWD engine".to_string(),
        grid: GridSpec { nx, ny, nz },
        physics: PhysicsSpec {
            lambda_cells: 10.0,
            lambda_nm: 600.0,
            cfl: 0.95,
        },
        pml: Some(PmlDecl::with_thickness(6)),
        source: Some(SourceDecl::x_polarized(40, 1.0)),
        scene: SceneDecl::Explicit {
            materials: vec![
                "vacuum".to_string(),
                "glass".to_string(),
                "a-Si:H".to_string(),
            ],
            background: "vacuum".to_string(),
            layers: vec![LayerDecl::flat("glass", 0.0, 12.0)],
            spheres,
        },
        engine: EngineDecl::MwdPeriodicX {
            dw: 4,
            bz: 2,
            tg_x: 1,
            tg_z: 2,
            tg_c: 1,
            groups: 2,
        },
        convergence: ConvergenceDecl {
            tol: 1e-2,
            max_periods: 40,
        },
        sweep: None,
        workers: 1,
        outputs: OutputsDecl {
            intensity_profile: false,
            absorption: vec![SlabDecl {
                name: "grating".to_string(),
                z_lo: 11,
                z_hi: 17,
            }],
        },
    }
}

/// A thin a-Si absorber film over TCO/glass, swept across four
/// wavelengths — the "how thin can the junction get" workload.
pub fn thin_absorber() -> ScenarioSpec {
    ScenarioSpec {
        name: "thin-absorber".to_string(),
        description: "5-cell a-Si absorber on TCO/glass, four-wavelength sweep".to_string(),
        grid: GridSpec {
            nx: 16,
            ny: 16,
            nz: 48,
        },
        physics: PhysicsSpec {
            lambda_cells: 10.0,
            lambda_nm: 500.0,
            cfl: 0.95,
        },
        pml: Some(PmlDecl::with_thickness(6)),
        source: Some(SourceDecl::x_polarized(40, 1.0)),
        scene: SceneDecl::Explicit {
            materials: vec![
                "vacuum".to_string(),
                "glass".to_string(),
                "TCO".to_string(),
                "a-Si:H".to_string(),
            ],
            background: "vacuum".to_string(),
            layers: vec![
                LayerDecl::flat("glass", 0.0, 10.0),
                LayerDecl::flat("TCO", 10.0, 14.0),
                LayerDecl::flat("a-Si:H", 14.0, 19.0),
            ],
            spheres: Vec::new(),
        },
        engine: EngineDecl::NaivePeriodicXY,
        convergence: ConvergenceDecl {
            tol: 1e-2,
            max_periods: 40,
        },
        sweep: Some(SweepDecl {
            lambdas: vec![
                SweepPoint {
                    nm: 420.0,
                    cells: 8.4,
                },
                SweepPoint {
                    nm: 500.0,
                    cells: 10.0,
                },
                SweepPoint {
                    nm: 580.0,
                    cells: 11.6,
                },
                SweepPoint {
                    nm: 660.0,
                    cells: 13.2,
                },
            ],
        }),
        workers: 1,
        outputs: OutputsDecl {
            intensity_profile: false,
            absorption: vec![SlabDecl {
                name: "absorber".to_string(),
                z_lo: 14,
                z_hi: 19,
            }],
        },
    }
}

/// Every built-in scenario, in catalog order.
pub fn builtins() -> Vec<ScenarioSpec> {
    vec![
        solar_cell(),
        silver_nanowire(),
        bragg_mirror(),
        vacuum_slab(),
        photonic_grating(),
        thin_absorber(),
    ]
}

/// Look up one built-in scenario by name.
pub fn builtin(name: &str) -> Option<ScenarioSpec> {
    builtins().into_iter().find(|s| s.name == name)
}

/// The catalog's names, in order.
pub fn builtin_names() -> Vec<String> {
    builtins().into_iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_at_least_six_valid_unique_scenarios() {
        let all = builtins();
        assert!(all.len() >= 6, "catalog too small: {}", all.len());
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate scenario names");
        for s in &all {
            s.validate().expect("builtin scenario must validate");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(builtin("solar-cell").is_some());
        assert!(builtin("no-such-scenario").is_none());
        assert_eq!(builtin_names().len(), builtins().len());
    }

    #[test]
    fn solar_cell_sweep_matches_the_pre_refactor_example() {
        let s = solar_cell();
        let jobs = s.jobs();
        assert_eq!(jobs.len(), 3);
        assert_eq!(
            jobs.iter()
                .map(|j| (j.lambda_nm, j.lambda_cells))
                .collect::<Vec<_>>(),
            vec![(450.0, 9.0), (550.0, 11.0), (650.0, 13.0)]
        );
    }

    #[test]
    fn every_builtin_roundtrips_through_toml() {
        for s in builtins() {
            let text = s.to_toml_string();
            let back = ScenarioSpec::from_toml_str(&text)
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text}", s.name));
            assert_eq!(back, s, "{} changed through TOML", s.name);
        }
    }

    #[test]
    fn every_builtin_builds_a_scene_and_engine() {
        for s in builtins() {
            let scene = s.build_scene().expect("scene builds");
            assert!(!scene.materials.is_empty());
            s.engine().expect("engine builds");
            let jobs = s.jobs();
            assert!(!jobs.is_empty());
        }
    }
}
