//! A hand-rolled parser and serializer for the TOML subset the scenario
//! files use.
//!
//! This build environment has no crates.io access, so — consistent with
//! the vendored-shim approach for `proptest`/`criterion` — the format
//! support is written here rather than pulled in. The subset covers
//! exactly what scenario specs need and nothing more:
//!
//! - `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`);
//! - strings with `\"`, `\\`, `\n`, `\t`, `\r` escapes (single line);
//! - integers (`i64`), floats (`f64`, including exponent notation),
//!   booleans;
//! - single-line arrays of values `[1, 2.0, "three"]`;
//! - table headers `[a.b]` and arrays of tables `[[a.b]]` (dotted paths
//!   descend into the most recent element of an array of tables, as in
//!   real TOML);
//! - `#` comments and blank lines.
//!
//! Errors carry the 1-based line number and a description of what was
//! expected. Serialization emits documents this parser round-trips
//! losslessly (`parse(serialize(t)) == t`).

use std::fmt::Write as _;

/// A primitive TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Array(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One entry of a table: a value, a sub-table, or an array of tables.
#[derive(Clone, Debug, PartialEq)]
pub enum Entry {
    Value(Value),
    Table(Table),
    Tables(Vec<Table>),
}

/// An ordered table (insertion order is preserved so serialization is
/// deterministic and round-trips).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    pairs: Vec<(String, Entry)>,
}

impl Table {
    pub fn new() -> Table {
        Table::default()
    }

    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, e)| e)
    }

    fn get_mut(&mut self, key: &str) -> Option<&mut Entry> {
        self.pairs
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, e)| e)
    }

    /// Insert, failing on duplicates (the parser's duplicate-key check).
    pub fn insert(&mut self, key: &str, entry: Entry) -> Result<(), String> {
        if self.get(key).is_some() {
            return Err(format!("duplicate key `{key}`"));
        }
        self.pairs.push((key.to_string(), entry));
        Ok(())
    }

    /// Insert or replace (serialization-side construction).
    pub fn set(&mut self, key: &str, entry: Entry) {
        if let Some(e) = self.get_mut(key) {
            *e = entry;
        } else {
            self.pairs.push((key.to_string(), entry));
        }
    }

    pub fn set_value(&mut self, key: &str, v: Value) {
        self.set(key, Entry::Value(v));
    }

    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.pairs.iter().map(|(k, _)| k.as_str())
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

// ------------------------------------------------------------- parsing

/// Parse a document into its root table.
pub fn parse(text: &str) -> Result<Table, String> {
    let mut root = Table::new();
    // Path of the table the following key/value lines belong to.
    let mut current: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let inner = rest
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {line_no}: `[[` without closing `]]`"))?;
            let path = parse_path(inner, line_no)?;
            let (parent, last) = path.split_at(path.len() - 1);
            let table = navigate(&mut root, parent, line_no)?;
            match table.get_mut(&last[0]) {
                None => {
                    table
                        .insert(&last[0], Entry::Tables(vec![Table::new()]))
                        .map_err(|e| format!("line {line_no}: {e}"))?;
                }
                Some(Entry::Tables(v)) => v.push(Table::new()),
                Some(other) => {
                    return Err(format!(
                        "line {line_no}: `{}` is already a {}, not an array of tables",
                        last[0],
                        entry_kind(other)
                    ))
                }
            }
            current = path;
        } else if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {line_no}: `[` without closing `]`"))?;
            let path = parse_path(inner, line_no)?;
            navigate(&mut root, &path, line_no)?;
            current = path;
        } else {
            let (key, value) = parse_keyval(line, line_no)?;
            let table = navigate(&mut root, &current, line_no)?;
            table
                .insert(&key, Entry::Value(value))
                .map_err(|e| format!("line {line_no}: {e}"))?;
        }
    }
    Ok(root)
}

fn entry_kind(e: &Entry) -> &'static str {
    match e {
        Entry::Value(v) => v.type_name(),
        Entry::Table(_) => "table",
        Entry::Tables(_) => "array of tables",
    }
}

fn parse_path(inner: &str, line_no: usize) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for seg in inner.split('.') {
        let seg = seg.trim();
        if !is_bare_key(seg) {
            return Err(format!(
                "line {line_no}: invalid table name segment `{seg}` \
                 (bare keys use letters, digits, `-` and `_`)"
            ));
        }
        out.push(seg.to_string());
    }
    Ok(out)
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// Walk `path` from `root`, creating intermediate tables; a path segment
/// that names an array of tables descends into its last element.
fn navigate<'a>(
    root: &'a mut Table,
    path: &[String],
    line_no: usize,
) -> Result<&'a mut Table, String> {
    let mut t = root;
    for seg in path {
        if t.get(seg).is_none() {
            t.insert(seg, Entry::Table(Table::new()))
                .map_err(|e| format!("line {line_no}: {e}"))?;
        }
        t = match t.get_mut(seg).expect("just ensured") {
            Entry::Table(sub) => sub,
            Entry::Tables(v) => v.last_mut().expect("array of tables is never empty"),
            Entry::Value(v) => {
                return Err(format!(
                    "line {line_no}: `{seg}` is a {}, not a table",
                    v.type_name()
                ))
            }
        };
    }
    Ok(t)
}

fn parse_keyval(line: &str, line_no: usize) -> Result<(String, Value), String> {
    let eq = line
        .find('=')
        .ok_or_else(|| format!("line {line_no}: expected `key = value`, got `{line}`"))?;
    let key = line[..eq].trim();
    if !is_bare_key(key) {
        return Err(format!(
            "line {line_no}: invalid key `{key}` \
             (bare keys use letters, digits, `-` and `_`)"
        ));
    }
    let mut cur = Cursor::new(&line[eq + 1..], line_no);
    cur.skip_ws();
    let value = cur.parse_value()?;
    cur.skip_ws();
    if !cur.at_end_or_comment() {
        return Err(format!(
            "line {line_no}: trailing characters after value: `{}`",
            cur.rest()
        ));
    }
    Ok((key.to_string(), value))
}

/// Character cursor over the value part of one line.
struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line_no: usize,
    src: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str, line_no: usize) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line_no,
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.pos += 1;
        }
    }

    fn at_end_or_comment(&self) -> bool {
        matches!(self.peek(), None | Some('#'))
    }

    fn rest(&self) -> String {
        self.chars[self.pos..].iter().collect()
    }

    fn err(&self, what: &str) -> String {
        format!("line {}: {what} in `{}`", self.line_no, self.src.trim())
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some('"') => self.parse_string().map(Value::Str),
            Some('[') => self.parse_array(),
            Some(_) => self.parse_scalar(),
            None => Err(self.err("expected a value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    other => {
                        return Err(self.err(&format!(
                            "unsupported escape `\\{}`",
                            other.map(String::from).unwrap_or_default()
                        )))
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.bump(); // `[`
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated array")),
                Some(']') => {
                    self.bump();
                    return Ok(Value::Array(items));
                }
                _ => {}
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {}
                None => return Err(self.err("unterminated array")),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == ',' || c == ']' || c == '#' || c == ' ' || c == '\t' {
                break;
            }
            self.pos += 1;
        }
        let token: String = self.chars[start..self.pos].iter().collect();
        match token.as_str() {
            "" => Err(self.err("expected a value")),
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => {
                if let Ok(i) = token.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
                if let Ok(f) = token.parse::<f64>() {
                    return Ok(Value::Float(f));
                }
                Err(self.err(&format!(
                    "`{token}` is not a number, boolean, string or array"
                )))
            }
        }
    }
}

// --------------------------------------------------------- serializing

/// Serialize a table into a document [`parse`] round-trips.
pub fn serialize(root: &Table) -> String {
    let mut out = String::new();
    emit_table(&mut out, root, &mut Vec::new());
    out
}

fn emit_table(out: &mut String, t: &Table, path: &mut Vec<String>) {
    for (k, e) in &t.pairs {
        if let Entry::Value(v) = e {
            let _ = writeln!(out, "{k} = {}", format_value(v));
        }
    }
    for (k, e) in &t.pairs {
        path.push(k.clone());
        match e {
            Entry::Value(_) => {}
            Entry::Table(sub) => {
                let _ = writeln!(out, "\n[{}]", path.join("."));
                emit_table(out, sub, path);
            }
            Entry::Tables(v) => {
                for el in v {
                    let _ = writeln!(out, "\n[[{}]]", path.join("."));
                    emit_table(out, el, path);
                }
            }
        }
        path.pop();
    }
}

fn format_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format_string(s),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format_float(*f),
        Value::Bool(b) => b.to_string(),
        Value::Array(items) => {
            let body: Vec<String> = items.iter().map(format_value).collect();
            format!("[{}]", body.join(", "))
        }
    }
}

fn format_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn format_float(f: f64) -> String {
    // `{:?}` is Rust's shortest round-trip form; it always includes a
    // `.` or exponent for finite values, so floats re-parse as floats.
    format!("{f:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &Table) {
        let text = serialize(t);
        let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(&back, t, "round trip changed the table:\n{text}");
    }

    #[test]
    fn parses_scalars_tables_and_arrays_of_tables() {
        let doc = r#"
# a scenario-ish document
name = "demo"        # trailing comment
count = 3
scale = 2.5
on = true
tags = ["a", "b"]

[grid]
nx = 8
ny = 8

[scene]
background = "vacuum"

[[scene.layer]]
z_lo = 0.0
z_hi = 4.0

[scene.layer.texture]
seed = 11

[[scene.layer]]
z_lo = 4.0
z_hi = 8.0
"#;
        let t = parse(doc).unwrap();
        assert_eq!(
            t.get("name"),
            Some(&Entry::Value(Value::Str("demo".into())))
        );
        assert_eq!(t.get("count"), Some(&Entry::Value(Value::Int(3))));
        assert_eq!(t.get("scale"), Some(&Entry::Value(Value::Float(2.5))));
        assert_eq!(t.get("on"), Some(&Entry::Value(Value::Bool(true))));
        let Some(Entry::Table(scene)) = t.get("scene") else {
            panic!("scene table");
        };
        let Some(Entry::Tables(layers)) = scene.get("layer") else {
            panic!("layer array");
        };
        assert_eq!(layers.len(), 2);
        // The nested texture table attached to the *first* [[scene.layer]].
        assert!(matches!(layers[0].get("texture"), Some(Entry::Table(_))));
        assert!(layers[1].get("texture").is_none());
        roundtrip(&t);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut t = Table::new();
        t.set_value("s", Value::Str("a \"quoted\" \\ back\nnewline\ttab".into()));
        roundtrip(&t);
    }

    #[test]
    fn floats_stay_floats_and_ints_stay_ints() {
        let mut t = Table::new();
        t.set_value("f", Value::Float(2.0));
        t.set_value("g", Value::Float(1e-7));
        t.set_value("h", Value::Float(-0.125));
        t.set_value("i", Value::Int(2));
        roundtrip(&t);
        let back = parse(&serialize(&t)).unwrap();
        assert!(matches!(back.get("f"), Some(Entry::Value(Value::Float(v))) if *v == 2.0));
        assert!(matches!(back.get("i"), Some(Entry::Value(Value::Int(2)))));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a = 1\nb = ").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = parse("a = 1\n\nc == 2").unwrap_err();
        assert!(e.contains("line 3"), "{e}");
        let e = parse("[grid\nnx = 1").unwrap_err();
        assert!(e.contains("line 1") && e.contains("closing"), "{e}");
        let e = parse("x = \"unterminated").unwrap_err();
        assert!(e.contains("unterminated string"), "{e}");
        let e = parse("x = [1, 2").unwrap_err();
        assert!(e.contains("unterminated array"), "{e}");
        let e = parse("x = what").unwrap_err();
        assert!(e.contains("`what`"), "{e}");
    }

    #[test]
    fn duplicate_keys_rejected() {
        let e = parse("a = 1\na = 2").unwrap_err();
        assert!(e.contains("duplicate key `a`"), "{e}");
        let e = parse("[t]\nx = 1\nx = 2").unwrap_err();
        assert!(e.contains("duplicate key `x`"), "{e}");
    }

    #[test]
    fn scalar_table_conflicts_rejected() {
        let e = parse("a = 1\n[a]\nb = 2").unwrap_err();
        assert!(e.contains("not a table"), "{e}");
        let e = parse("[a]\nx = 1\n[[a]]\ny = 2").unwrap_err();
        assert!(e.contains("array of tables"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = parse("# header\n\n  # indented comment\nx = 1 # trailing\n").unwrap();
        assert_eq!(t.get("x"), Some(&Entry::Value(Value::Int(1))));
    }

    #[test]
    fn nested_arrays_parse() {
        let t = parse("m = [[1, 2], [3, 4]]").unwrap();
        let Some(Entry::Value(Value::Array(rows))) = t.get("m") else {
            panic!("array");
        };
        assert_eq!(rows.len(), 2);
        roundtrip(&t);
    }
}
