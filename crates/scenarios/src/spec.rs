//! The declarative scenario specification.
//!
//! A [`ScenarioSpec`] describes a complete THIIM workload as data: grid
//! extents, the material stack / geometry (or a named scene preset),
//! plane-wave source, PML, execution engine, convergence criteria, an
//! optional wavelength sweep, and the output artifacts to compute. Specs
//! serialize to and from the TOML subset of [`crate::toml`], validate
//! with precise error messages, and build [`ThiimSolver`] instances via
//! the shared [`SolverBuilder`] — the same construction path the
//! examples use, so scenario-driven runs are bit-identical to
//! hand-rolled ones.

use em_field::{Axis, GridDims};
use em_kernels::SpatialConfig;
use em_solver::geometry::{Layer, Texture};
use em_solver::{
    Engine, Material, MaterialId, PmlSpec, Scene, SolverBuilder, SourceSpec, Sphere, ThiimSolver,
};
use mwd_core::{MwdConfig, TgShape};

/// Names the spec format accepts for materials, mapped to the presets of
/// [`em_solver::materials`].
pub const MATERIAL_NAMES: [&str; 9] = [
    "vacuum", "glass", "SiO2", "TCO", "a-Si:H", "uc-Si:H", "Ag", "Au", "c-Si",
];

/// Names the spec format accepts for whole-scene presets.
pub const SCENE_PRESETS: [&str; 1] = ["tandem-solar-cell"];

/// Resolve a catalog material by name.
pub fn material_by_name(name: &str) -> Option<Material> {
    match name {
        "vacuum" => Some(Material::vacuum()),
        "glass" => Some(Material::glass()),
        "SiO2" => Some(Material::silica()),
        "TCO" => Some(Material::tco()),
        "a-Si:H" => Some(Material::a_si()),
        "uc-Si:H" => Some(Material::uc_si()),
        "Ag" => Some(Material::silver()),
        "Au" => Some(Material::gold()),
        "c-Si" => Some(Material::c_si()),
        _ => None,
    }
}

/// Grid extents in cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridSpec {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

/// Wavelength and time-step parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhysicsSpec {
    /// Vacuum wavelength in cells (grid resolution).
    pub lambda_cells: f64,
    /// Vacuum wavelength in nm (material dispersion lookup).
    pub lambda_nm: f64,
    /// CFL safety factor.
    pub cfl: f64,
}

/// PML description (applied at both z ends).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PmlDecl {
    pub thickness: usize,
    pub order: f64,
    pub sigma_max: f64,
}

impl PmlDecl {
    /// The spec equivalent of [`PmlSpec::new`] (same default grading).
    pub fn with_thickness(thickness: usize) -> Self {
        let p = PmlSpec::new(thickness);
        PmlDecl {
            thickness: p.thickness,
            order: p.order,
            sigma_max: p.sigma_max,
        }
    }

    pub fn to_pml_spec(self) -> PmlSpec {
        PmlSpec {
            thickness: self.thickness,
            order: self.order,
            sigma_max: self.sigma_max,
        }
    }
}

/// Plane-wave source sheet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SourceDecl {
    pub z_plane: usize,
    pub amplitude: f64,
    /// `Axis::X` or `Axis::Y`.
    pub polarization: Axis,
}

impl SourceDecl {
    pub fn x_polarized(z_plane: usize, amplitude: f64) -> Self {
        SourceDecl {
            z_plane,
            amplitude,
            polarization: Axis::X,
        }
    }

    pub fn to_source_spec(self) -> SourceSpec {
        SourceSpec {
            z_plane: self.z_plane,
            amplitude: em_field::Cplx::real(self.amplitude),
            polarization: self.polarization,
        }
    }
}

/// Rough-interface texture parameters (see [`Texture`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TextureDecl {
    pub amplitude: f64,
    pub period: f64,
    pub seed: u64,
}

impl TextureDecl {
    fn to_texture(self) -> Texture {
        Texture {
            amplitude: self.amplitude,
            period: self.period,
            seed: self.seed,
        }
    }
}

/// One horizontal layer, z in cells.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerDecl {
    pub material: String,
    pub z_lo: f64,
    pub z_hi: f64,
    pub top_texture: Option<TextureDecl>,
    pub bottom_texture: Option<TextureDecl>,
}

impl LayerDecl {
    pub fn flat(material: &str, z_lo: f64, z_hi: f64) -> Self {
        LayerDecl {
            material: material.to_string(),
            z_lo,
            z_hi,
            top_texture: None,
            bottom_texture: None,
        }
    }
}

/// One spherical inclusion, coordinates in cells.
#[derive(Clone, Debug, PartialEq)]
pub struct SphereDecl {
    pub material: String,
    pub center: [f64; 3],
    pub radius: f64,
}

/// The scene: either a named preset or an explicit stack.
#[derive(Clone, Debug, PartialEq)]
pub enum SceneDecl {
    /// A scene generator from [`em_solver::geometry`], by name
    /// (see [`SCENE_PRESETS`]).
    Preset { preset: String },
    /// Explicit material list + layers + spheres. Materials are
    /// registered in listed order (so `MaterialId`s are reproducible);
    /// `background` must name one of them.
    Explicit {
        materials: Vec<String>,
        background: String,
        layers: Vec<LayerDecl>,
        spheres: Vec<SphereDecl>,
    },
}

impl SceneDecl {
    pub fn vacuum() -> SceneDecl {
        SceneDecl::Explicit {
            materials: vec!["vacuum".to_string()],
            background: "vacuum".to_string(),
            layers: Vec::new(),
            spheres: Vec::new(),
        }
    }

    /// Materialize the scene for the given grid.
    pub fn build(&self, dims: GridDims) -> Result<Scene, String> {
        match self {
            SceneDecl::Preset { preset } => match preset.as_str() {
                "tandem-solar-cell" => Ok(Scene::tandem_solar_cell(dims.nx, dims.ny, dims.nz)),
                other => Err(format!(
                    "unknown scene preset `{other}` (known: {})",
                    SCENE_PRESETS.join(", ")
                )),
            },
            SceneDecl::Explicit {
                materials,
                background,
                layers,
                spheres,
            } => {
                let resolved: Vec<Material> = materials
                    .iter()
                    .map(|n| {
                        material_by_name(n).ok_or_else(|| {
                            format!(
                                "unknown material `{n}` (known: {})",
                                MATERIAL_NAMES.join(", ")
                            )
                        })
                    })
                    .collect::<Result<_, String>>()?;
                let id_of = |name: &str| -> Result<MaterialId, String> {
                    materials
                        .iter()
                        .position(|m| m == name)
                        .map(MaterialId)
                        .ok_or_else(|| format!("material `{name}` is not in the materials list"))
                };
                let mut scene = Scene {
                    materials: resolved,
                    background: id_of(background)?,
                    layers: Vec::new(),
                    spheres: Vec::new(),
                };
                for l in layers {
                    scene.layers.push(Layer {
                        material: id_of(&l.material)?,
                        z_lo: l.z_lo,
                        z_hi: l.z_hi,
                        top_texture: l.top_texture.map(TextureDecl::to_texture),
                        bottom_texture: l.bottom_texture.map(TextureDecl::to_texture),
                    });
                }
                for s in spheres {
                    scene.spheres.push(Sphere {
                        center: s.center,
                        radius: s.radius,
                        material: id_of(&s.material)?,
                    });
                }
                Ok(scene)
            }
        }
    }
}

/// Execution engine selection, as data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineDecl {
    /// Let the auto-tuner pick the MWD configuration for this grid at
    /// run time (resolved through the tuning cache by the batch runner;
    /// `threads = 0` means "this job's thread-budget share").
    Auto {
        threads: usize,
    },
    Naive,
    NaivePeriodicXY,
    Spatial {
        by: usize,
        bz: usize,
        threads: usize,
    },
    Mwd {
        dw: usize,
        bz: usize,
        tg_x: usize,
        tg_z: usize,
        tg_c: usize,
        groups: usize,
    },
    MwdPeriodicX {
        dw: usize,
        bz: usize,
        tg_x: usize,
        tg_z: usize,
        tg_c: usize,
        groups: usize,
    },
}

impl EngineDecl {
    pub const KINDS: [&'static str; 6] = [
        "auto",
        "naive",
        "naive-periodic-xy",
        "spatial",
        "mwd",
        "mwd-periodic-x",
    ];

    /// A reasonable engine of the given kind for `threads` threads
    /// (used by the CLI `--engine` override).
    pub fn auto(kind: &str, threads: usize) -> Result<EngineDecl, String> {
        let threads = threads.max(1);
        match kind {
            "auto" => Ok(EngineDecl::Auto { threads }),
            "naive" => Ok(EngineDecl::Naive),
            "naive-periodic-xy" => Ok(EngineDecl::NaivePeriodicXY),
            "spatial" => Ok(EngineDecl::Spatial {
                by: 8,
                bz: 8,
                threads,
            }),
            "mwd" => Ok(EngineDecl::Mwd {
                dw: 4,
                bz: 2,
                tg_x: 1,
                tg_z: 1,
                tg_c: 1,
                groups: threads,
            }),
            "mwd-periodic-x" => Ok(EngineDecl::MwdPeriodicX {
                dw: 4,
                bz: 2,
                tg_x: 1,
                tg_z: 1,
                tg_c: 1,
                groups: threads,
            }),
            other => Err(format!(
                "unknown engine kind `{other}` (known: {})",
                Self::KINDS.join(", ")
            )),
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            EngineDecl::Auto { .. } => "auto",
            EngineDecl::Naive => "naive",
            EngineDecl::NaivePeriodicXY => "naive-periodic-xy",
            EngineDecl::Spatial { .. } => "spatial",
            EngineDecl::Mwd { .. } => "mwd",
            EngineDecl::MwdPeriodicX { .. } => "mwd-periodic-x",
        }
    }

    /// Human-readable engine description for status lines and artifacts.
    pub fn label(&self) -> String {
        match *self {
            EngineDecl::Auto { threads: 0 } => "auto".to_string(),
            EngineDecl::Auto { threads } => format!("auto(threads={threads})"),
            EngineDecl::Naive | EngineDecl::NaivePeriodicXY => self.kind().to_string(),
            EngineDecl::Spatial { by, bz, threads } => {
                format!("spatial(by={by}, bz={bz}, threads={threads})")
            }
            EngineDecl::Mwd {
                dw,
                bz,
                tg_x,
                tg_z,
                tg_c,
                groups,
            } => format!("mwd(dw={dw}, bz={bz}, tg={tg_x}x{tg_z}x{tg_c}, groups={groups})"),
            EngineDecl::MwdPeriodicX {
                dw,
                bz,
                tg_x,
                tg_z,
                tg_c,
                groups,
            } => format!(
                "mwd-periodic-x(dw={dw}, bz={bz}, tg={tg_x}x{tg_z}x{tg_c}, groups={groups})"
            ),
        }
    }

    /// Threads this engine occupies while stepping.
    pub fn threads(&self) -> usize {
        match *self {
            EngineDecl::Auto { threads } => threads.max(1),
            EngineDecl::Naive | EngineDecl::NaivePeriodicXY => 1,
            EngineDecl::Spatial { threads, .. } => threads,
            EngineDecl::Mwd {
                tg_x,
                tg_z,
                tg_c,
                groups,
                ..
            }
            | EngineDecl::MwdPeriodicX {
                tg_x,
                tg_z,
                tg_c,
                groups,
                ..
            } => groups * tg_x * tg_z * tg_c,
        }
    }

    fn mwd_config(
        dw: usize,
        bz: usize,
        tg_x: usize,
        tg_z: usize,
        tg_c: usize,
        groups: usize,
    ) -> MwdConfig {
        MwdConfig {
            dw,
            bz,
            tg: TgShape {
                x: tg_x,
                z: tg_z,
                c: tg_c,
            },
            groups,
        }
    }

    /// Validate against the grid and produce the runnable [`Engine`].
    pub fn to_engine(&self, dims: GridDims) -> Result<Engine, String> {
        match *self {
            EngineDecl::Auto { .. } => Err(
                "engine `auto` must be resolved through the tuning cache before execution \
                 (the batch runner does this; see `mwd tune`)"
                    .to_string(),
            ),
            EngineDecl::Naive => Ok(Engine::Naive),
            EngineDecl::NaivePeriodicXY => Ok(Engine::NaivePeriodicXY),
            EngineDecl::Spatial { by, bz, threads } => {
                if by == 0 || bz == 0 {
                    return Err(format!(
                        "spatial block sizes must be positive, got {by}x{bz}"
                    ));
                }
                if threads == 0 {
                    return Err("spatial engine needs at least one thread".to_string());
                }
                Ok(Engine::Spatial {
                    cfg: SpatialConfig::new(by, bz),
                    threads,
                })
            }
            EngineDecl::Mwd {
                dw,
                bz,
                tg_x,
                tg_z,
                tg_c,
                groups,
            } => {
                let cfg = Self::mwd_config(dw, bz, tg_x, tg_z, tg_c, groups);
                cfg.validate(dims)?;
                Ok(Engine::Mwd(cfg))
            }
            EngineDecl::MwdPeriodicX {
                dw,
                bz,
                tg_x,
                tg_z,
                tg_c,
                groups,
            } => {
                let cfg = Self::mwd_config(dw, bz, tg_x, tg_z, tg_c, groups);
                cfg.validate(dims)?;
                Ok(Engine::MwdPeriodicX(cfg))
            }
        }
    }
}

/// Stop criteria for the per-job convergence loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergenceDecl {
    /// Relative field change per period below which the run converged.
    pub tol: f64,
    pub max_periods: usize,
}

impl Default for ConvergenceDecl {
    fn default() -> Self {
        ConvergenceDecl {
            tol: 1e-2,
            max_periods: 40,
        }
    }
}

/// One absorption-accounting slab, z in cells.
#[derive(Clone, Debug, PartialEq)]
pub struct SlabDecl {
    pub name: String,
    pub z_lo: usize,
    pub z_hi: usize,
}

/// Which result artifacts a job computes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OutputsDecl {
    /// Include the laterally averaged |E|^2(z) profile in the artifact.
    pub intensity_profile: bool,
    /// Absorption totals per named slab.
    pub absorption: Vec<SlabDecl>,
}

/// One wavelength point of a sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    pub nm: f64,
    pub cells: f64,
}

/// A parameter sweep expanded into one job per point.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepDecl {
    pub lambdas: Vec<SweepPoint>,
}

/// A fully declarative workload description.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    pub name: String,
    pub description: String,
    pub grid: GridSpec,
    pub physics: PhysicsSpec,
    pub pml: Option<PmlDecl>,
    pub source: Option<SourceDecl>,
    pub scene: SceneDecl,
    pub engine: EngineDecl,
    pub convergence: ConvergenceDecl,
    pub sweep: Option<SweepDecl>,
    pub outputs: OutputsDecl,
    /// Worker processes to decompose each solve across (z-axis domain
    /// decomposition via `em_dist`). 1 — the default — solves in
    /// process; the canonical TOML omits the key at 1, so adding this
    /// knob changed no existing content hash.
    pub workers: usize,
}

/// One executable unit expanded from a spec (a single wavelength point).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioJob {
    pub scenario: String,
    /// Index within the scenario's own sweep.
    pub sweep_index: usize,
    pub lambda_nm: f64,
    pub lambda_cells: f64,
}

impl ScenarioSpec {
    pub fn dims(&self) -> GridDims {
        GridDims::new(self.grid.nx, self.grid.ny, self.grid.nz)
    }

    /// Expand the sweep (or the single physics point) into jobs.
    pub fn jobs(&self) -> Vec<ScenarioJob> {
        let points: Vec<SweepPoint> = match &self.sweep {
            Some(s) => s.lambdas.clone(),
            None => vec![SweepPoint {
                nm: self.physics.lambda_nm,
                cells: self.physics.lambda_cells,
            }],
        };
        points
            .into_iter()
            .enumerate()
            .map(|(i, p)| ScenarioJob {
                scenario: self.name.clone(),
                sweep_index: i,
                lambda_nm: p.nm,
                lambda_cells: p.cells,
            })
            .collect()
    }

    /// Build the scene for this spec's grid.
    pub fn build_scene(&self) -> Result<Scene, String> {
        self.scene.build(self.dims())
    }

    /// Build a solver for one job through the shared [`SolverBuilder`].
    pub fn build_solver(&self, job: &ScenarioJob) -> Result<ThiimSolver, String> {
        let dims = self.dims();
        let scene = self.scene.build(dims)?;
        let mut b = SolverBuilder::new(dims)
            .scene(scene)
            .wavelength(job.lambda_cells, job.lambda_nm)
            .cfl(self.physics.cfl);
        if let Some(p) = &self.pml {
            b = b.pml(p.to_pml_spec());
        }
        if let Some(s) = &self.source {
            b = b.source(s.to_source_spec());
        }
        Ok(b.build())
    }

    /// The runnable engine, validated against this spec's grid.
    pub fn engine(&self) -> Result<Engine, String> {
        self.engine.to_engine(self.dims())
    }

    /// One-line description for `mwd list`.
    pub fn summary(&self) -> String {
        format!(
            "{:<18} {:>11}  {:<18} {} job{}  {}",
            self.name,
            format!("{}", self.dims()),
            self.engine.kind(),
            self.jobs().len(),
            if self.jobs().len() == 1 { " " } else { "s" },
            self.description
        )
    }

    /// Content hash of the spec's canonical TOML serialization — 32 hex
    /// digits, stable across hosts and processes. The same key the job
    /// service derives for a submitted spec body, so artifacts named by
    /// it line up with the service's result store.
    pub fn content_hash(&self) -> String {
        em_json::hash::content_hash(&[&self.to_toml_string()])
    }

    // ---------------------------------------------------- validation

    /// Check every declared quantity for consistency; error messages
    /// name the offending section and value.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_inner()
            .map_err(|e| format!("scenario `{}`: {e}", self.name))
    }

    fn validate_inner(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("name must not be empty".to_string());
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "name `{}` may only use letters, digits, `-` and `_` \
                 (it becomes part of artifact file names)",
                self.name
            ));
        }
        let g = self.grid;
        if g.nx == 0 || g.ny == 0 || g.nz == 0 {
            return Err(format!(
                "[grid] extents must be positive, got {}x{}x{}",
                g.nx, g.ny, g.nz
            ));
        }
        let dims = self.dims();

        let p = self.physics;
        for (what, v) in [
            ("lambda_cells", p.lambda_cells),
            ("lambda_nm", p.lambda_nm),
            ("cfl", p.cfl),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!(
                    "[physics] {what} must be positive and finite, got {v}"
                ));
            }
        }
        if p.lambda_cells < 4.0 {
            return Err(format!(
                "[physics] lambda_cells = {} is below the resolvable minimum of 4 cells",
                p.lambda_cells
            ));
        }
        if p.cfl > 1.0 {
            return Err(format!(
                "[physics] cfl = {} exceeds the stability limit 1",
                p.cfl
            ));
        }

        if let Some(pml) = &self.pml {
            if 2 * pml.thickness >= g.nz {
                return Err(format!(
                    "[pml] two {}-cell layers do not fit into nz = {}",
                    pml.thickness, g.nz
                ));
            }
            if !pml.order.is_finite() || pml.order <= 0.0 {
                return Err(format!("[pml] order must be positive, got {}", pml.order));
            }
            if !pml.sigma_max.is_finite() || pml.sigma_max < 0.0 {
                return Err(format!(
                    "[pml] sigma_max must be non-negative, got {}",
                    pml.sigma_max
                ));
            }
        }

        if let Some(src) = &self.source {
            if src.z_plane >= g.nz {
                return Err(format!(
                    "[source] z_plane = {} is outside the grid (nz = {})",
                    src.z_plane, g.nz
                ));
            }
            if !src.amplitude.is_finite() {
                return Err("[source] amplitude must be finite".to_string());
            }
            if !matches!(src.polarization, Axis::X | Axis::Y) {
                return Err("[source] polarization must be `x` or `y`".to_string());
            }
        }

        self.validate_scene()?;

        // `to_engine` runs the full structural check (diamond width,
        // thread-group shape, z-parallelism vs BZ, x-parallelism vs Nx).
        // `auto` has no structure yet — the tuner only emits validated
        // configurations, so the spec is consistent by construction.
        if !matches!(self.engine, EngineDecl::Auto { .. }) {
            self.engine
                .to_engine(dims)
                .map_err(|e| format!("[engine] {e}"))?;
        }

        if self.workers == 0 {
            return Err("workers must be at least 1".to_string());
        }
        if self.workers > g.nz {
            return Err(format!(
                "workers = {} exceeds nz = {}; every z-slab needs at least one plane",
                self.workers, g.nz
            ));
        }

        let c = self.convergence;
        if !c.tol.is_finite() || c.tol <= 0.0 {
            return Err(format!("[convergence] tol must be positive, got {}", c.tol));
        }
        if c.max_periods == 0 {
            return Err("[convergence] max_periods must be at least 1".to_string());
        }

        if let Some(s) = &self.sweep {
            if s.lambdas.is_empty() {
                return Err("[sweep] needs at least one lambda point".to_string());
            }
            for (i, pt) in s.lambdas.iter().enumerate() {
                if !pt.nm.is_finite() || pt.nm <= 0.0 || !pt.cells.is_finite() || pt.cells < 4.0 {
                    return Err(format!(
                        "[sweep] lambda #{i}: nm must be positive and cells >= 4, \
                         got nm = {}, cells = {}",
                        pt.nm, pt.cells
                    ));
                }
            }
        }

        for (i, slab) in self.outputs.absorption.iter().enumerate() {
            if slab.z_lo >= slab.z_hi || slab.z_hi > g.nz {
                return Err(format!(
                    "[outputs] absorption slab #{i} (`{}`): need z_lo < z_hi <= nz, \
                     got [{}, {}) with nz = {}",
                    slab.name, slab.z_lo, slab.z_hi, g.nz
                ));
            }
        }
        Ok(())
    }

    fn validate_scene(&self) -> Result<(), String> {
        let g = self.grid;
        match &self.scene {
            SceneDecl::Preset { preset } => {
                if !SCENE_PRESETS.contains(&preset.as_str()) {
                    return Err(format!(
                        "[scene] unknown preset `{preset}` (known: {})",
                        SCENE_PRESETS.join(", ")
                    ));
                }
            }
            SceneDecl::Explicit {
                materials,
                background,
                layers,
                spheres,
            } => {
                if materials.is_empty() {
                    return Err("[scene] materials list must not be empty".to_string());
                }
                for (i, m) in materials.iter().enumerate() {
                    if material_by_name(m).is_none() {
                        return Err(format!(
                            "[scene] unknown material `{m}` (known: {})",
                            MATERIAL_NAMES.join(", ")
                        ));
                    }
                    if materials[..i].contains(m) {
                        return Err(format!("[scene] material `{m}` listed twice"));
                    }
                }
                if !materials.contains(background) {
                    return Err(format!(
                        "[scene] background `{background}` is not in the materials list"
                    ));
                }
                for (i, l) in layers.iter().enumerate() {
                    if !materials.contains(&l.material) {
                        return Err(format!(
                            "[scene] layer #{i} uses material `{}` \
                             which is not in the materials list",
                            l.material
                        ));
                    }
                    if !(l.z_lo.is_finite() && l.z_hi.is_finite())
                        || l.z_lo < 0.0
                        || l.z_lo >= l.z_hi
                        || l.z_hi > g.nz as f64
                    {
                        return Err(format!(
                            "[scene] layer #{i}: need 0 <= z_lo < z_hi <= nz = {}, \
                             got [{}, {})",
                            g.nz, l.z_lo, l.z_hi
                        ));
                    }
                    for t in [l.top_texture, l.bottom_texture].into_iter().flatten() {
                        if !t.amplitude.is_finite() || t.amplitude < 0.0 {
                            return Err(format!(
                                "[scene] layer #{i}: texture amplitude must be non-negative"
                            ));
                        }
                        if !t.period.is_finite() || t.period <= 0.0 {
                            return Err(format!(
                                "[scene] layer #{i}: texture period must be positive"
                            ));
                        }
                        if t.seed > i64::MAX as u64 {
                            // TOML integers are i64; a larger seed would
                            // not survive serialization.
                            return Err(format!(
                                "[scene] layer #{i}: texture seed {} exceeds the \
                                 TOML integer maximum {}",
                                t.seed,
                                i64::MAX
                            ));
                        }
                    }
                }
                // Nominal (untextured) layer intervals must be disjoint:
                // overlapping stacks are almost always authoring errors,
                // and "later layer wins" would silently hide them.
                let mut spans: Vec<(f64, f64, usize)> = layers
                    .iter()
                    .enumerate()
                    .map(|(i, l)| (l.z_lo, l.z_hi, i))
                    .collect();
                spans.sort_by(|a, b| a.0.total_cmp(&b.0));
                for w in spans.windows(2) {
                    if w[1].0 < w[0].1 {
                        return Err(format!(
                            "[scene] layers #{} and #{} overlap: [{}, {}) vs [{}, {})",
                            w[0].2, w[1].2, w[0].0, w[0].1, w[1].0, w[1].1
                        ));
                    }
                }
                for (i, s) in spheres.iter().enumerate() {
                    if !materials.contains(&s.material) {
                        return Err(format!(
                            "[scene] sphere #{i} uses material `{}` \
                             which is not in the materials list",
                            s.material
                        ));
                    }
                    if !s.radius.is_finite() || s.radius <= 0.0 {
                        return Err(format!(
                            "[scene] sphere #{i}: radius must be positive, got {}",
                            s.radius
                        ));
                    }
                    let bounds = [g.nx as f64, g.ny as f64, g.nz as f64];
                    for (axis, (&c, &b)) in s.center.iter().zip(bounds.iter()).enumerate() {
                        if !c.is_finite() || c < 0.0 || c > b {
                            return Err(format!(
                                "[scene] sphere #{i}: center component {axis} = {c} \
                                 is outside [0, {b}]"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
