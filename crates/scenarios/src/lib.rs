//! # em-scenarios — declarative workloads and the batch runner
//!
//! The paper's THIIM solver exists to sweep *many* device configurations
//! (solar-cell stacks, nanowire arrays, gratings) through the same
//! MWD-accelerated Maxwell kernel. This crate makes those workloads
//! first-class data instead of hand-rolled example programs:
//!
//! - [`spec`]: the declarative [`ScenarioSpec`](spec::ScenarioSpec) —
//!   grid, material stack / geometry, source, PML, engine, convergence
//!   criteria, wavelength sweep and output artifacts — with validation
//!   and precise error messages;
//! - [`toml`]: a hand-rolled parser/serializer for the TOML subset the
//!   scenario files use (no crates.io in this environment, consistent
//!   with the vendored `proptest`/`criterion` shims);
//! - [`codec`]: the explicit `ScenarioSpec` ⇄ TOML mapping with
//!   unknown-key detection;
//! - [`library`]: the built-in catalog — the paper's tandem solar cell
//!   and silver nanowire plus a Bragg mirror, a bare-vacuum calibration
//!   slab, a high-contrast photonic grating and a thin-absorber sweep —
//!   all routed through [`em_solver::SolverBuilder`], the same path the
//!   examples use (scenario runs are bit-identical to hand-rolled ones);
//! - [`gen`]: the generative catalog — seeded structure generators
//!   (multilayer / rough-interface / nanoparticle / nanowire families)
//!   over dispersive materials, plus the differential fuzz harness that
//!   checks every generated spec against the naive-vs-MWD bit-identity
//!   oracle;
//! - [`runner`]: the concurrent batch runner — a bounded worker pool
//!   sharing one [`mwd_core::ThreadBudget`] with each job's intra-solve
//!   thread groups, deterministic result ordering, and one JSON artifact
//!   per job plus a batch summary;
//! - [`json`]: a re-export of the shared [`em_json`] crate, whose
//!   [`Json`] value type those artifacts (and the bench harness's
//!   `BENCH_results.json`, the tuning cache, and the job service) use.
//!
//! The `mwd` CLI binary in the umbrella crate (`list`, `show`, `run`,
//! `batch`) is a thin shell over this crate.

pub mod codec;
pub mod gen;
pub mod library;
pub mod runner;
pub mod spec;
pub mod toml;

/// Historical module path: the JSON writer now lives in the shared
/// `em_json` crate (which also carries the parser).
pub use em_json as json;

pub use em_json::Json;
pub use library::{builtin, builtin_names, builtins};
pub use runner::{
    run_batch, write_artifacts, BatchOptions, BatchReport, JobOutcome, TunePlan, TuneRecord,
    CANCELLED_PREFIX, TIMEOUT_PREFIX,
};
pub use spec::{
    ConvergenceDecl, EngineDecl, GridSpec, LayerDecl, OutputsDecl, PhysicsSpec, PmlDecl,
    ScenarioJob, ScenarioSpec, SceneDecl, SlabDecl, SourceDecl, SphereDecl, SweepDecl, SweepPoint,
    TextureDecl,
};
