//! Seeded structure generators.
//!
//! Each [`Family`] maps a `(seed, params)` pair to one valid
//! [`ScenarioSpec`] through a deterministic [`GenRng`] stream. The
//! contract: same triple ⇒ byte-identical spec TOML on every host, and
//! every emitted spec passes [`ScenarioSpec::validate`] — a generated
//! spec that fails validation is a generator bug, which is exactly what
//! the fuzz harness in [`super::fuzz`] exists to catch.
//!
//! The families mirror the device classes of the source paper's
//! application domain: thin-film multilayer stacks, the same stacks
//! with rough (textured) interfaces, nanoparticle dispersions, and
//! nanowire chains — the last two with plasmonic metals (Ag/Au) that
//! force the THIIM back iteration through their negative permittivity.

use super::rng::GenRng;
use crate::spec::{
    ConvergenceDecl, EngineDecl, GridSpec, LayerDecl, OutputsDecl, PhysicsSpec, PmlDecl,
    ScenarioSpec, SceneDecl, SourceDecl, SphereDecl, TextureDecl,
};

/// A structure-generator family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Random dielectric/semiconductor layer stacks, optionally on a
    /// metallic back reflector.
    Multilayer,
    /// Multilayer stacks whose internal interfaces carry sinusoidal
    /// roughness textures (light-trapping morphology).
    RoughInterface,
    /// A dispersion of spherical nanoparticles in a host background.
    Nanoparticle,
    /// A metallic nanowire: a chain of overlapping spheres along y.
    Nanowire,
}

impl Family {
    pub const ALL: [Family; 4] = [
        Family::Multilayer,
        Family::RoughInterface,
        Family::Nanoparticle,
        Family::Nanowire,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Family::Multilayer => "multilayer",
            Family::RoughInterface => "rough-interface",
            Family::Nanoparticle => "nanoparticle",
            Family::Nanowire => "nanowire",
        }
    }

    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.iter().copied().find(|f| f.name() == name)
    }

    pub fn description(&self) -> &'static str {
        match self {
            Family::Multilayer => "random thin-film layer stacks, optional metal back reflector",
            Family::RoughInterface => "layer stacks with textured (rough) internal interfaces",
            Family::Nanoparticle => "spherical nanoparticle dispersions in a host medium",
            Family::Nanowire => "plasmonic nanowire (overlapping Ag/Au sphere chain along y)",
        }
    }
}

/// Wavelengths the synthetic material fits are calibrated for; requests
/// outside this band are rejected rather than silently extrapolated.
pub const LAMBDA_BAND_NM: (f64, f64) = (350.0, 1000.0);

/// Parameter ranges the generators draw from. All ranges are inclusive.
#[derive(Clone, Debug)]
pub struct GenParams {
    pub nx: (usize, usize),
    pub ny: (usize, usize),
    pub nz: (usize, usize),
    /// Layer count for the stack families.
    pub layers: (usize, usize),
    /// Vacuum wavelength draw range, nm.
    pub lambda_nm: (f64, f64),
    /// Grid resolution draw range, cells per vacuum wavelength.
    pub lambda_cells: (f64, f64),
    /// Sphere count for the particle family.
    pub spheres: (usize, usize),
    /// Convergence cap for emitted specs.
    pub max_periods: usize,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            nx: (8, 16),
            ny: (8, 16),
            nz: (28, 48),
            layers: (2, 6),
            lambda_nm: (420.0, 780.0),
            lambda_cells: (8.0, 14.0),
            spheres: (1, 6),
            max_periods: 4,
        }
    }
}

impl GenParams {
    /// A deliberately tiny grid for smoke tests and CI fuzz jobs.
    pub fn tiny() -> Self {
        GenParams {
            nx: (6, 8),
            ny: (6, 8),
            nz: (24, 30),
            layers: (1, 3),
            spheres: (1, 3),
            max_periods: 2,
            ..GenParams::default()
        }
    }

    /// Reject degenerate or out-of-band parameter ranges with a message
    /// naming the offending field. Generators call this before drawing,
    /// so bad params are an error, never a panic.
    pub fn validate(&self) -> Result<(), String> {
        for (what, (lo, hi)) in [
            ("nx", self.nx),
            ("ny", self.ny),
            ("nz", self.nz),
            ("layers", self.layers),
            ("spheres", self.spheres),
        ] {
            if lo == 0 && what != "layers" && what != "spheres" {
                return Err(format!("[gen] {what} range must start at 1, got {lo}"));
            }
            if lo > hi {
                return Err(format!("[gen] degenerate {what} range: lo {lo} > hi {hi}"));
            }
        }
        for (what, (lo, hi)) in [
            ("lambda_nm", self.lambda_nm),
            ("lambda_cells", self.lambda_cells),
        ] {
            if !lo.is_finite() || !hi.is_finite() || lo > hi {
                return Err(format!("[gen] degenerate {what} range: [{lo}, {hi}]"));
            }
        }
        let (band_lo, band_hi) = LAMBDA_BAND_NM;
        if self.lambda_nm.0 < band_lo || self.lambda_nm.1 > band_hi {
            return Err(format!(
                "[gen] lambda_nm range [{}, {}] leaves the calibrated band [{band_lo}, {band_hi}]",
                self.lambda_nm.0, self.lambda_nm.1
            ));
        }
        if self.lambda_cells.0 < 4.0 {
            return Err(format!(
                "[gen] lambda_cells range starts at {} — below the resolvable minimum of 4",
                self.lambda_cells.0
            ));
        }
        // The generators place PML, a source sheet and structure along
        // z; below ~20 cells there is no room for all three.
        if self.nz.0 < 20 {
            return Err(format!(
                "[gen] nz range starts at {} — need at least 20 cells for PML + source + structure",
                self.nz.0
            ));
        }
        if self.max_periods == 0 {
            return Err("[gen] max_periods must be at least 1".to_string());
        }
        Ok(())
    }
}

/// Materials the stack families draw layer bodies from.
const STACK_MATERIALS: [&str; 6] = ["glass", "SiO2", "TCO", "a-Si:H", "uc-Si:H", "c-Si"];
/// Back-reflector / plasmonic metals.
const METALS: [&str; 2] = ["Ag", "Au"];
/// Host media for particle dispersions.
const HOSTS: [&str; 3] = ["vacuum", "glass", "SiO2"];
/// Particle materials (dielectric and plasmonic).
const PARTICLES: [&str; 4] = ["SiO2", "c-Si", "Ag", "Au"];

/// Generate one spec from a `(family, seed, params)` triple.
///
/// The emitted spec is validated before being returned; a validation
/// failure here means the generator itself is buggy and is reported as
/// an error (the fuzz harness turns it into a repro line).
pub fn generate(family: Family, seed: u64, params: &GenParams) -> Result<ScenarioSpec, String> {
    params.validate()?;
    let mut rng = GenRng::for_family(family.name(), seed);
    let spec = build(family, seed, params, &mut rng);
    spec.validate()
        .map_err(|e| format!("generated spec failed validation (generator bug): {e}"))?;
    Ok(spec)
}

fn build(family: Family, seed: u64, p: &GenParams, rng: &mut GenRng) -> ScenarioSpec {
    let nx = rng.range_usize(p.nx.0, p.nx.1);
    let ny = rng.range_usize(p.ny.0, p.ny.1);
    let nz = rng.range_usize(p.nz.0, p.nz.1);
    let lambda_nm = round2(rng.range_f64(p.lambda_nm.0, p.lambda_nm.1));
    let lambda_cells = round2(rng.range_f64(p.lambda_cells.0, p.lambda_cells.1));

    // Fixed z budget: PML at both ends, the source sheet two cells
    // under the top PML, structure strictly below the source.
    let pml = 4usize.min((nz / 6).max(2));
    let z_source = nz - pml - 2;
    let z_floor = (pml + 1) as f64;
    let z_ceil = (z_source - 2) as f64;

    let scene = match family {
        Family::Multilayer => stack_scene(rng, p, z_floor, z_ceil, false),
        Family::RoughInterface => stack_scene(rng, p, z_floor, z_ceil, true),
        Family::Nanoparticle => particle_scene(rng, p, nx, ny, z_floor, z_ceil),
        Family::Nanowire => nanowire_scene(rng, nx, ny, z_floor, z_ceil),
    };

    ScenarioSpec {
        name: format!("gen-{}-s{seed}", family.name()),
        description: format!("generated: {} (seed {seed})", family.description()),
        grid: GridSpec { nx, ny, nz },
        physics: PhysicsSpec {
            lambda_cells,
            lambda_nm,
            cfl: 0.95,
        },
        pml: Some(PmlDecl::with_thickness(pml)),
        source: Some(SourceDecl::x_polarized(z_source, 1.0)),
        scene,
        engine: pick_engine(rng),
        convergence: ConvergenceDecl {
            tol: 1e-2,
            max_periods: p.max_periods,
        },
        sweep: None,
        workers: 1,
        outputs: OutputsDecl::default(),
    }
}

/// Two decimals: keeps the TOML short and makes the float→text→float
/// roundtrip trivially exact.
fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Either the single-thread periodic naive engine or a small MWD
/// configuration that `MwdConfig::validate` accepts on any grid the
/// params can produce (dw=4 diamonds over bz=2 rows, 1–3 in-diamond
/// threads, 1–2 groups).
fn pick_engine(rng: &mut GenRng) -> EngineDecl {
    if rng.chance(0.5) {
        EngineDecl::NaivePeriodicXY
    } else {
        EngineDecl::Mwd {
            dw: 4,
            bz: 2,
            tg_x: 1,
            tg_z: 1,
            tg_c: *rng.pick(&[1usize, 3]),
            groups: rng.range_usize(1, 2),
        }
    }
}

fn stack_scene(
    rng: &mut GenRng,
    p: &GenParams,
    z_floor: f64,
    z_ceil: f64,
    textured: bool,
) -> SceneDecl {
    let n_layers = rng.range_usize(p.layers.0, p.layers.1).max(1);
    let with_metal = rng.chance(0.4);
    let metal = *rng.pick(&METALS);

    // Draw relative thickness weights, then scale the stack to the
    // available z span so the layers always fit between PML and source.
    let weights: Vec<f64> = (0..n_layers).map(|_| rng.range_f64(0.5, 2.0)).collect();
    let total: f64 = weights.iter().sum();
    let avail = z_ceil - z_floor;
    let metal_h = if with_metal {
        (avail * 0.15).min(4.0)
    } else {
        0.0
    };
    let stack_span = avail - metal_h;

    let mut materials: Vec<String> = vec!["vacuum".to_string()];
    let mut layers = Vec::new();
    let mut z = z_floor;
    if with_metal {
        materials.push(metal.to_string());
        layers.push(LayerDecl::flat(metal, z, round2(z + metal_h)));
        z = round2(z + metal_h);
    }
    for w in &weights {
        let body = *rng.pick(&STACK_MATERIALS);
        if !materials.iter().any(|m| m == body) {
            materials.push(body.to_string());
        }
        let z_hi = round2(z + stack_span * w / total);
        let mut layer = LayerDecl::flat(body, z, z_hi);
        if textured && z_hi - z > 2.0 {
            // Texture amplitude stays below half the layer thickness so
            // the perturbed interface cannot escape the grid.
            layer.top_texture = Some(TextureDecl {
                amplitude: round2(rng.range_f64(0.2, ((z_hi - z) * 0.3).min(1.5))),
                period: round2(rng.range_f64(3.0, 9.0)),
                seed: rng.next_u64() & i64::MAX as u64,
            });
        }
        layers.push(layer);
        z = z_hi;
    }
    // Guard against float accumulation pushing the top edge past the
    // ceiling: clamp the last layer.
    if let Some(last) = layers.last_mut() {
        if last.z_hi > z_ceil {
            last.z_hi = z_ceil;
        }
    }
    SceneDecl::Explicit {
        materials,
        background: "vacuum".to_string(),
        layers,
        spheres: Vec::new(),
    }
}

fn particle_scene(
    rng: &mut GenRng,
    p: &GenParams,
    nx: usize,
    ny: usize,
    z_floor: f64,
    z_ceil: f64,
) -> SceneDecl {
    let host = *rng.pick(&HOSTS);
    let particle = loop {
        let m = *rng.pick(&PARTICLES);
        if m != host {
            break m;
        }
    };
    let n = rng.range_usize(p.spheres.0, p.spheres.1).max(1);
    let r_max = (nx.min(ny) as f64 / 4.0).max(1.0);
    let spheres = (0..n)
        .map(|_| {
            let radius = round2(rng.range_f64(0.8, r_max));
            SphereDecl {
                material: particle.to_string(),
                center: [
                    round2(rng.range_f64(0.0, nx as f64)),
                    round2(rng.range_f64(0.0, ny as f64)),
                    round2(
                        rng.range_f64(z_floor + radius, (z_ceil - radius).max(z_floor + radius)),
                    ),
                ],
                radius,
            }
        })
        .collect();
    let mut materials = vec![host.to_string(), particle.to_string()];
    materials.dedup();
    SceneDecl::Explicit {
        materials,
        background: host.to_string(),
        layers: Vec::new(),
        spheres,
    }
}

fn nanowire_scene(rng: &mut GenRng, nx: usize, ny: usize, z_floor: f64, z_ceil: f64) -> SceneDecl {
    let metal = *rng.pick(&METALS);
    let radius = round2(rng.range_f64(1.0, (nx as f64 / 5.0).max(1.0)));
    let cx = round2(rng.range_f64(radius, nx as f64 - radius));
    let cz = round2(rng.range_f64(z_floor + radius, (z_ceil - radius).max(z_floor + radius)));
    // Overlapping spheres along the full y extent make a continuous wire.
    let spheres = (0..ny)
        .map(|j| SphereDecl {
            material: metal.to_string(),
            center: [cx, j as f64 + 0.5, cz],
            radius,
        })
        .collect();
    SceneDecl::Explicit {
        materials: vec!["vacuum".to_string(), metal.to_string()],
        background: "vacuum".to_string(),
        layers: Vec::new(),
        spheres,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_valid_specs() {
        let p = GenParams::default();
        for family in Family::ALL {
            for seed in 0..20u64 {
                let spec = generate(family, seed, &p)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", family.name()));
                assert_eq!(spec.name, format!("gen-{}-s{seed}", family.name()));
                assert!(spec.sweep.is_none(), "generated specs never sweep");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = GenParams::default();
        for family in Family::ALL {
            let a = generate(family, 99, &p).unwrap();
            let b = generate(family, 99, &p).unwrap();
            assert_eq!(a, b);
            assert_eq!(a.to_toml_string(), b.to_toml_string());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = GenParams::default();
        let a = generate(Family::Multilayer, 1, &p).unwrap();
        let b = generate(Family::Multilayer, 2, &p).unwrap();
        assert_ne!(a.to_toml_string(), b.to_toml_string());
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn family_names_roundtrip() {
        for f in Family::ALL {
            assert_eq!(Family::from_name(f.name()), Some(f));
        }
        assert_eq!(Family::from_name("no-such"), None);
    }

    #[test]
    fn params_validation_names_the_field() {
        let p = GenParams {
            layers: (5, 2),
            ..GenParams::default()
        };
        let e = p.validate().unwrap_err();
        assert!(e.contains("degenerate layers range"), "{e}");

        let p = GenParams {
            lambda_nm: (200.0, 600.0),
            ..GenParams::default()
        };
        let e = p.validate().unwrap_err();
        assert!(e.contains("calibrated band"), "{e}");

        let p = GenParams {
            nz: (4, 10),
            ..GenParams::default()
        };
        assert!(p.validate().is_err());
    }
}
