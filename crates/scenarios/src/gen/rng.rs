//! The generator's deterministic random stream.
//!
//! splitmix64 expands the `(family, seed)` pair into the four words of
//! xoshiro256** state; xoshiro256** then drives every draw. Both are
//! public-domain constructions (Blackman & Vigna) hand-rolled here
//! because the environment has no crates.io — and hand-rolling is the
//! point: the stream is part of the generator's *contract*. The same
//! `(family, seed, params)` triple must produce byte-identical spec
//! TOML on every host, forever, so the PRNG cannot be an external
//! dependency whose sequence might change under us.

/// One splitmix64 step — used to seed the main stream and by the
/// vendored proptest shim (independently; the streams never mix).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** stream with convenience draws for the generator.
#[derive(Clone, Debug)]
pub struct GenRng {
    s: [u64; 4],
}

impl GenRng {
    /// Seed from a raw 64-bit value via splitmix64 (the construction
    /// the xoshiro authors recommend: never feed correlated words).
    pub fn from_seed(seed: u64) -> GenRng {
        let mut sm = seed;
        GenRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Seed for a `(family, seed)` pair: the family name is folded in
    /// FNV-1a style so two families given the same user seed draw
    /// decorrelated streams.
    pub fn for_family(family_name: &str, seed: u64) -> GenRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in family_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        GenRng::from_seed(h ^ seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [lo, hi). Degenerate ranges return `lo` (callers
    /// validate their parameter ranges before drawing).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in the inclusive range [lo, hi].
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let width = (hi - lo + 1) as u64;
        lo + (self.next_u64() % width) as usize
    }

    /// One element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.range_usize(0, items.len() - 1)]
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = GenRng::from_seed(7);
        let mut b = GenRng::from_seed(7);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn families_decorrelate_on_the_same_seed() {
        let mut a = GenRng::for_family("multilayer", 42);
        let mut b = GenRng::for_family("nanowire", 42);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "streams should not collide");
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256** from the all-ones-ish state
        // produced by splitmix64(0): pinned so a silent edit to the
        // stream (which would re-key every generated spec) fails loudly.
        let mut r = GenRng::from_seed(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = GenRng::from_seed(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_eq!(
            first[0], 0x99ec_5f36_cb75_f2b4,
            "stream changed: {first:#x?}"
        );
    }

    #[test]
    fn draws_stay_in_bounds() {
        let mut r = GenRng::from_seed(123);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let x = r.range_f64(2.5, 3.5);
            assert!((2.5..3.5).contains(&x));
            let n = r.range_usize(4, 9);
            assert!((4..=9).contains(&n));
        }
        assert_eq!(r.range_usize(5, 5), 5);
        assert_eq!(r.range_f64(1.0, 1.0), 1.0);
    }
}
