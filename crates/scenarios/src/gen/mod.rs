//! # Generative scenarios
//!
//! Turns the six-entry fixed catalog into an unbounded seeded family:
//!
//! - [`rng`]: the hand-rolled splitmix64/xoshiro256** stream whose
//!   sequence is part of the generator contract (same `(family, seed,
//!   params)` ⇒ byte-identical spec TOML on every host);
//! - [`families`]: the structure generators — multilayer stacks,
//!   rough-interface stacks, nanoparticle dispersions and plasmonic
//!   nanowires — each emitting validated [`ScenarioSpec`]s drawing on
//!   the dispersive Ag/Au/c-Si material fits in `em_solver`;
//! - [`fuzz`]: the differential harness that pushes every generated
//!   spec through validation → TOML roundtrip → naive solve → MWD
//!   solve → bit-identity, reporting failures as one-line
//!   `(family, seed)` repros.
//!
//! The `mwd gen` subcommand (`list`, `emit`, `run`, `fuzz`) is a thin
//! shell over this module.
//!
//! [`ScenarioSpec`]: crate::spec::ScenarioSpec

pub mod families;
pub mod fuzz;
pub mod rng;

pub use families::{generate, Family, GenParams, LAMBDA_BAND_NM};
pub use fuzz::{run_fuzz, FuzzFailure, FuzzOptions, FuzzReport};
pub use rng::{splitmix64, GenRng};
