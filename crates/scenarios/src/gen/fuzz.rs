//! Differential fuzzing over the bit-identity oracle.
//!
//! Each case takes one `(family, case_seed)` pair through the full
//! pipeline the paper's correctness argument rests on:
//!
//! 1. **generate** — the structure generator must emit a spec that
//!    passes validation (a panic or validation error is a generator
//!    bug);
//! 2. **codec** — the spec must roundtrip through its TOML
//!    serialization unchanged;
//! 3. **solve** — a naive reference solver and an MWD solver step the
//!    same scene from the same deterministically filled fields; panics
//!    and non-finite energies fail the case;
//! 4. **bit-identity** — the two field sets must match bit for bit
//!    (the Malas et al. diamond-tiling equivalence, checked per spec
//!    instead of per hand-picked example).
//!
//! Every failure carries a one-line repro: re-running
//! `mwd gen fuzz --family F --seed S --count 1` regenerates exactly the
//! offending case, because case `i` of a run seeded `S0` uses seed
//! `S0 + i` and generation depends only on `(family, seed, params)`.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

use em_solver::Engine;
use mwd_core::{MwdConfig, TgShape};

use super::families::{generate, Family, GenParams};
use crate::spec::{EngineDecl, ScenarioSpec};

/// What one fuzz run does.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Number of cases; case `i` uses seed `seed + i`.
    pub count: usize,
    pub seed: u64,
    /// Families to cycle through (case `i` uses `families[i % len]`).
    pub families: Vec<Family>,
    pub params: GenParams,
    /// Solver steps per engine before the bit comparison.
    pub steps: usize,
    /// Test-only corruption hook: advance the MWD side one extra step
    /// before comparing, simulating a kernel that computes the wrong
    /// fields. The harness must flag every such case.
    pub corrupt: bool,
    /// Where to write failing specs' TOML (one file per failure).
    pub out_dir: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            count: 8,
            seed: 42,
            families: Family::ALL.to_vec(),
            params: GenParams::tiny(),
            steps: 6,
            corrupt: false,
            out_dir: None,
        }
    }
}

/// One failed case, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    pub family: &'static str,
    pub seed: u64,
    /// Pipeline stage that failed: `generate`, `codec`, `solve`, `nan`
    /// or `bit-identity`.
    pub stage: &'static str,
    pub message: String,
    /// The generated spec, when generation got that far.
    pub spec_toml: Option<String>,
}

impl FuzzFailure {
    /// The one-line repro contract: this exact command regenerates and
    /// re-checks the failing case.
    pub fn repro_line(&self) -> String {
        format!(
            "repro: mwd gen fuzz --family {} --seed {} --count 1",
            self.family, self.seed
        )
    }

    /// `(family, seed) stage: message` — the line the CLI prints.
    pub fn summary(&self) -> String {
        format!(
            "({}, seed {}) failed at {}: {}",
            self.family, self.seed, self.stage, self.message
        )
    }
}

/// Outcome of a fuzz run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    pub cases: usize,
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the harness. Failing specs are written to `out_dir` (if set) as
/// `<family>-s<seed>.toml`; directory-creation or write errors surface
/// as an `Err`, case failures do not.
pub fn run_fuzz(opts: &FuzzOptions) -> Result<FuzzReport, String> {
    if opts.families.is_empty() {
        return Err("[gen] fuzz needs at least one family".to_string());
    }
    if opts.count == 0 {
        return Err("[gen] fuzz needs at least one case".to_string());
    }
    opts.params.validate()?;
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create fuzz output dir {}: {e}", dir.display()))?;
    }

    let mut report = FuzzReport {
        cases: opts.count,
        failures: Vec::new(),
    };
    for i in 0..opts.count {
        let family = opts.families[i % opts.families.len()];
        let case_seed = opts.seed.wrapping_add(i as u64);
        if let Some(mut failure) = run_case(family, case_seed, opts) {
            if let (Some(dir), Some(toml)) = (&opts.out_dir, &failure.spec_toml) {
                let path = dir.join(format!("{}-s{case_seed}.toml", family.name()));
                if let Err(e) = std::fs::write(&path, toml) {
                    failure
                        .message
                        .push_str(&format!(" (also failed to write {}: {e})", path.display()));
                }
            }
            report.failures.push(failure);
        }
    }
    Ok(report)
}

/// The MWD configuration paired against the naive reference when the
/// generated spec itself declares a naive engine: a nontrivial shape
/// (multi-group, component-parallel) that `MwdConfig::validate` accepts
/// on every grid the generators can produce.
fn oracle_config() -> MwdConfig {
    MwdConfig {
        dw: 4,
        bz: 2,
        tg: TgShape { x: 1, z: 1, c: 3 },
        groups: 2,
    }
}

fn run_case(family: Family, case_seed: u64, opts: &FuzzOptions) -> Option<FuzzFailure> {
    let fail = |stage: &'static str, message: String, spec_toml: Option<String>| {
        Some(FuzzFailure {
            family: family.name(),
            seed: case_seed,
            stage,
            message,
            spec_toml,
        })
    };

    // Stage 1: generation. Panics and validation errors are both
    // generator bugs.
    let spec = match catching(|| generate(family, case_seed, &opts.params)) {
        Ok(Ok(spec)) => spec,
        Ok(Err(e)) => return fail("generate", e, None),
        Err(p) => return fail("generate", format!("panic: {p}"), None),
    };
    let toml = spec.to_toml_string();

    // Stage 2: TOML roundtrip.
    match catching(|| ScenarioSpec::from_toml_str(&toml)) {
        Ok(Ok(back)) if back == spec => {}
        Ok(Ok(_)) => {
            return fail(
                "codec",
                "spec changed through TOML roundtrip".to_string(),
                Some(toml),
            )
        }
        Ok(Err(e)) => return fail("codec", format!("reparse failed: {e}"), Some(toml)),
        Err(p) => return fail("codec", format!("panic: {p}"), Some(toml)),
    }

    // Stage 3: build and step the naive/MWD solver pair. The oracle is
    // the Dirichlet pair (`Naive` vs `Mwd` — the paper's benchmark
    // boundary, the only one with engines on both sides); when the spec
    // declares its own MWD shape, that shape is the MWD side, so the
    // fuzz also sweeps tiling configurations.
    let naive_engine = Engine::Naive;
    let mwd_engine = match spec.engine {
        EngineDecl::Mwd { .. } => spec
            .engine()
            .unwrap_or_else(|_| Engine::Mwd(oracle_config())),
        _ => Engine::Mwd(oracle_config()),
    };
    let solved = catching(|| {
        let job = &spec.jobs()[0];
        let mut naive = spec.build_solver(job)?;
        let mut mwd = spec.build_solver(job)?;
        naive.state.fields.fill_deterministic(case_seed);
        mwd.state.fields.fill_deterministic(case_seed);
        naive.step_n(&naive_engine, opts.steps)?;
        let mwd_steps = opts.steps + usize::from(opts.corrupt);
        mwd.step_n(&mwd_engine, mwd_steps)?;
        Ok::<_, String>((naive, mwd))
    });
    let (naive, mwd) = match solved {
        Ok(Ok(pair)) => pair,
        Ok(Err(e)) => return fail("solve", e, Some(toml)),
        Err(p) => return fail("solve", format!("panic: {p}"), Some(toml)),
    };

    // Stage 4: finite energies, then bit identity.
    let (en, em) = (naive.fields().energy(), mwd.fields().energy());
    if !en.is_finite() || !em.is_finite() {
        return fail(
            "nan",
            format!("non-finite field energy (naive {en}, mwd {em})"),
            Some(toml),
        );
    }
    if !naive.fields().bit_eq(mwd.fields()) {
        return fail(
            "bit-identity",
            format!(
                "naive ({naive_engine:?}) and MWD ({mwd_engine:?}) fields differ after {} steps",
                opts.steps
            ),
            Some(toml),
        );
    }
    None
}

/// Run a closure, converting a panic into its display payload. The
/// default panic hook is left in place — a fuzz failure *should* be
/// loud in the log; the harness merely survives it.
fn catching<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(|p| {
        p.downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_passes() {
        let report = run_fuzz(&FuzzOptions {
            count: 4,
            steps: 4,
            ..FuzzOptions::default()
        })
        .unwrap();
        assert_eq!(report.cases, 4);
        assert!(
            report.ok(),
            "unexpected failures: {:?}",
            report
                .failures
                .iter()
                .map(FuzzFailure::summary)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupted_kernel_is_caught_with_a_repro_line() {
        let report = run_fuzz(&FuzzOptions {
            count: 4,
            steps: 4,
            corrupt: true,
            ..FuzzOptions::default()
        })
        .unwrap();
        assert_eq!(
            report.failures.len(),
            4,
            "every corrupted case must be flagged"
        );
        for f in &report.failures {
            assert_eq!(f.stage, "bit-identity");
            assert!(f.repro_line().contains("--family"), "{}", f.repro_line());
            assert!(
                f.repro_line().contains(&format!("--seed {}", f.seed)),
                "{}",
                f.repro_line()
            );
            assert!(f.spec_toml.is_some());
        }
    }

    #[test]
    fn bad_options_error_instead_of_panicking() {
        assert!(run_fuzz(&FuzzOptions {
            count: 0,
            ..FuzzOptions::default()
        })
        .is_err());
        assert!(run_fuzz(&FuzzOptions {
            families: Vec::new(),
            ..FuzzOptions::default()
        })
        .is_err());
        let mut bad = FuzzOptions::default();
        bad.params.lambda_nm = (100.0, 200.0);
        assert!(run_fuzz(&bad).is_err());
    }
}
