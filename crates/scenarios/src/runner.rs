//! The concurrent batch runner.
//!
//! Expands a set of scenario specs (including their wavelength sweeps)
//! into a flat job list and executes it on a bounded pool of worker
//! threads. The pool size and the engine threads available to each job
//! share one [`ThreadBudget`]: auto-sized pools are shrunk until
//! `workers x widest engine` fits the budget, so `batch` never
//! oversubscribes the host no matter how jobs and intra-solve thread
//! groups combine (an explicitly pinned pool size is taken as is).
//!
//! Results come back in deterministic job order regardless of which
//! worker finished first, and — when an output directory is given —
//! are written as one JSON artifact per job plus a `batch_summary.json`
//! / `batch_summary.csv` pair, all after the concurrent phase so the
//! files appear in a stable order.

use crate::json::Json;
use crate::spec::{ConvergenceDecl, EngineDecl, ScenarioJob, ScenarioSpec};
use autotune::{ResolveOptions, TuneCache, TuneKey};
use em_solver::analysis;
use mwd_core::{CancelToken, ThreadBudget};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Options for [`run_batch`].
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Worker-pool size; 0 derives it from `budget`, the job count and
    /// the widest engine's thread demand (so the batch never
    /// oversubscribes the budget). An explicit value pins the pool size
    /// and is taken at face value.
    pub workers: usize,
    /// Engine-kind override (`--engine`): replaces every job's engine
    /// with [`EngineDecl::auto`] of this kind.
    pub engine_kind: Option<String>,
    /// Engine threads per job; defaults to the budget's share.
    pub threads: Option<usize>,
    /// Validate, expand and plan, but do not step any solver.
    pub dry_run: bool,
    /// Where to write per-job artifacts and the batch summary; `None`
    /// writes nothing.
    pub out_dir: Option<PathBuf>,
    /// Thread budget shared between workers and intra-solve threads.
    pub budget: ThreadBudget,
    /// Suppress per-job status lines.
    pub quiet: bool,
    /// Resolve MWD-family engines through the tuning cache (`--tune`).
    /// `engine = "auto"` jobs always resolve, with these options or —
    /// when `None` — against an in-memory cache.
    pub tune: Option<TunePlan>,
    /// Cooperative stop flag (graceful shutdown). Once set, workers
    /// finish the job they are on ("drain") but claim no further jobs;
    /// never-started jobs are recorded as cancelled outcomes, and the
    /// artifacts / batch summary are still written.
    pub stop: Option<Arc<AtomicBool>>,
    /// Cooperative cancellation token threaded into every job's
    /// solver (deadline and/or explicit cancel). A halted token drains
    /// the claim loop like [`stop`](Self::stop) does, and additionally
    /// halts *running* solvers at their next checkpoint; never-started
    /// jobs are recorded with the token's prefixed halt error.
    pub cancel: Option<CancelToken>,
    /// Span recorder (`--trace`): per-worker job spans, tune-resolution
    /// spans, and — through each job's solver — per-thread-group MWD
    /// phase spans. Disabled by default, which makes every
    /// instrumentation point a no-op and keeps artifacts bit-identical.
    pub trace: em_obs::Recorder,
}

/// How a batch resolves tuned configurations.
#[derive(Clone, Debug, Default)]
pub struct TunePlan {
    /// Persistent cache file; `None` keeps the cache in memory for this
    /// batch only.
    pub cache_path: Option<PathBuf>,
    /// Retune even when the cache already has an answer.
    pub force: bool,
    /// Natively probe this many sim-ranked finalists per miss
    /// (0 = model/sim stages only).
    pub refine_top: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: 0,
            engine_kind: None,
            threads: None,
            dry_run: false,
            out_dir: None,
            budget: ThreadBudget::host(),
            quiet: true,
            tune: None,
            stop: None,
            cancel: None,
            trace: em_obs::Recorder::disabled(),
        }
    }
}

/// The error message prefixes cancelled / timed-out outcomes carry
/// (see [`BatchOptions::stop`], [`BatchOptions::cancel`] and
/// [`BatchReport::cancelled`]). Canonical definitions live in
/// [`mwd_core::cancel`]; re-exported here for callers of the batch API.
pub use mwd_core::cancel::{CANCELLED_PREFIX, TIMEOUT_PREFIX};

/// How one job's configuration came out of the tuning cache.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneRecord {
    /// Whether the cache already had the answer (no search ran).
    pub cache_hit: bool,
    /// Pipeline stage that produced the configuration
    /// (`model` / `sim` / `native`).
    pub stage: String,
    /// Native probes spent resolving *this* job (0 on a hit).
    pub native_probes: usize,
    pub score_mlups: f64,
    /// The resolved configuration, in `MwdConfig::to_compact` form.
    pub config: String,
}

impl TuneRecord {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("stage", Json::str(&self.stage)),
            ("native_probes", Json::Int(self.native_probes as i64)),
            ("score_mlups", Json::Num(self.score_mlups)),
            ("config", Json::str(&self.config)),
        ])
    }
}

/// The result of one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Position in the deterministic batch order.
    pub job: usize,
    pub scenario: String,
    pub sweep_index: usize,
    pub lambda_nm: f64,
    pub lambda_cells: f64,
    pub dims: String,
    /// Content hash of the declaring spec's canonical TOML (32 hex
    /// digits, [`ScenarioSpec::content_hash`]). Part of the artifact
    /// filename so two specs that share a *name* (e.g. the same
    /// generator family under different parameter sets) can never
    /// overwrite each other's JSON.
    pub spec_hash: String,
    pub engine: String,
    pub threads: usize,
    pub dry_run: bool,
    pub converged: bool,
    pub periods: usize,
    pub steps: usize,
    pub rel_change: f64,
    pub energy: f64,
    pub back_iteration_cells: usize,
    /// `(slab name, absorbed power)` per requested output slab.
    pub absorption: Vec<(String, f64)>,
    /// Laterally averaged |E|^2(z), if the spec requested it.
    pub intensity_profile: Option<Vec<f64>>,
    pub wall_secs: f64,
    pub error: Option<String>,
    /// Artifact path, once written.
    pub artifact: Option<PathBuf>,
    /// How the engine configuration was resolved, when tuning applied.
    pub tuned: Option<TuneRecord>,
}

impl JobOutcome {
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("job", Json::Int(self.job as i64)),
            ("scenario", Json::str(&self.scenario)),
            ("sweep_index", Json::Int(self.sweep_index as i64)),
            ("lambda_nm", Json::Num(self.lambda_nm)),
            ("lambda_cells", Json::Num(self.lambda_cells)),
            ("dims", Json::str(&self.dims)),
            ("spec_hash", Json::str(&self.spec_hash)),
            ("engine", Json::str(&self.engine)),
            ("threads", Json::Int(self.threads as i64)),
            ("dry_run", Json::Bool(self.dry_run)),
            ("converged", Json::Bool(self.converged)),
            ("periods", Json::Int(self.periods as i64)),
            ("steps", Json::Int(self.steps as i64)),
            ("rel_change", Json::Num(self.rel_change)),
            ("energy", Json::Num(self.energy)),
            (
                "back_iteration_cells",
                Json::Int(self.back_iteration_cells as i64),
            ),
            ("wall_secs", Json::Num(self.wall_secs)),
        ];
        if !self.absorption.is_empty() {
            pairs.push((
                "absorption",
                Json::Obj(
                    self.absorption
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ));
        }
        if let Some(profile) = &self.intensity_profile {
            pairs.push((
                "intensity_profile",
                Json::Arr(profile.iter().map(|&v| Json::Num(v)).collect()),
            ));
        }
        if let Some(t) = &self.tuned {
            pairs.push(("tuned", t.to_json()));
        }
        match &self.error {
            Some(e) => pairs.push(("error", Json::str(e))),
            None => pairs.push(("error", Json::Null)),
        }
        Json::obj(pairs)
    }

    /// The deterministic artifact form: everything [`Self::to_json`]
    /// carries except wall-clock timing, so repeat solves of an
    /// identical job render byte-identical JSON. The job service's
    /// content-addressed result store serves exactly these bytes.
    pub fn to_json_canonical(&self) -> Json {
        match self.to_json() {
            Json::Obj(pairs) => Json::Obj(
                pairs
                    .into_iter()
                    .filter(|(k, _)| k != "wall_secs")
                    .collect(),
            ),
            other => other,
        }
    }
}

/// What [`run_batch`] returns: ordered outcomes plus pool telemetry.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One outcome per job, in deterministic job order.
    pub outcomes: Vec<JobOutcome>,
    /// Worker-pool size used.
    pub workers: usize,
    /// Engine threads granted to each job.
    pub threads_per_job: usize,
    /// Peak number of jobs observed running simultaneously.
    pub max_in_flight: usize,
    pub wall_secs: f64,
}

impl BatchReport {
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| o.error.is_some()).count()
    }

    /// Jobs the stop flag cancelled before they started (a subset of
    /// [`Self::failures`]).
    pub fn cancelled(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| {
                o.error
                    .as_deref()
                    .is_some_and(|e| e.starts_with(CANCELLED_PREFIX))
            })
            .count()
    }

    /// Jobs halted by an expired deadline — before starting or
    /// mid-solve (a subset of [`Self::failures`], disjoint from
    /// [`Self::cancelled`]).
    pub fn timed_out(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| {
                o.error
                    .as_deref()
                    .is_some_and(|e| e.starts_with(TIMEOUT_PREFIX))
            })
            .count()
    }

    /// `(cache hits, misses, native probes)` across the tuned jobs.
    pub fn tune_stats(&self) -> (usize, usize, usize) {
        let mut hits = 0;
        let mut misses = 0;
        let mut probes = 0;
        for t in self.outcomes.iter().filter_map(|o| o.tuned.as_ref()) {
            if t.cache_hit {
                hits += 1;
            } else {
                misses += 1;
            }
            probes += t.native_probes;
        }
        (hits, misses, probes)
    }
}

/// Whether tuning applies to a declared engine and, if so, which cache
/// engine kind it resolves under and the declared thread count
/// (0 = "this job's budget share").
fn tune_target(decl: EngineDecl, tune_requested: bool) -> Option<(&'static str, usize)> {
    match decl {
        EngineDecl::Auto { threads } => Some(("mwd", threads)),
        EngineDecl::Mwd { .. } if tune_requested => Some(("mwd", 0)),
        EngineDecl::MwdPeriodicX { .. } if tune_requested => Some(("mwd-periodic-x", 0)),
        _ => None,
    }
}

/// A resolved [`MwdConfig`] as the engine declaration it runs under.
fn tuned_decl(engine_kind: &str, cfg: mwd_core::MwdConfig) -> EngineDecl {
    if engine_kind == "mwd-periodic-x" {
        EngineDecl::MwdPeriodicX {
            dw: cfg.dw,
            bz: cfg.bz,
            tg_x: cfg.tg.x,
            tg_z: cfg.tg.z,
            tg_c: cfg.tg.c,
            groups: cfg.groups,
        }
    } else {
        EngineDecl::Mwd {
            dw: cfg.dw,
            bz: cfg.bz,
            tg_x: cfg.tg.x,
            tg_z: cfg.tg.z,
            tg_c: cfg.tg.c,
            groups: cfg.groups,
        }
    }
}

/// Execute every job of every spec on a bounded worker pool.
///
/// Fails fast (before any solver runs) if a spec does not validate or
/// the engine override is unknown; individual job failures during the
/// run are reported per outcome instead of aborting the batch.
pub fn run_batch(specs: &[ScenarioSpec], opts: &BatchOptions) -> Result<BatchReport, String> {
    for spec in specs {
        spec.validate()?;
    }

    // Expand sweeps into the flat, deterministic job list.
    let mut jobs: Vec<(&ScenarioSpec, ScenarioJob)> = Vec::new();
    for spec in specs {
        for job in spec.jobs() {
            jobs.push((spec, job));
        }
    }
    if jobs.is_empty() {
        return Err("batch contains no jobs".to_string());
    }

    let mut workers = if opts.workers > 0 {
        opts.workers.min(jobs.len())
    } else {
        opts.budget.split(jobs.len()).workers
    };
    // Each concurrent job's engine threads come out of the same budget
    // as the workers themselves: an explicit worker count (e.g. `mwd
    // run`'s sequential 1) grants each job a larger share.
    let threads_per_job = opts
        .threads
        .unwrap_or_else(|| opts.budget.total() / workers)
        .max(1);

    // Resolve every job's engine up front so `--engine` typos, tuning
    // failures and engine/grid mismatches fail before work starts.
    // MWD-family engines go through the tuning cache when the caller
    // asked for it; `auto` engines always do (in memory if no plan).
    let plan = opts.tune.clone().unwrap_or_default();
    let mut cache: Option<TuneCache> = None;
    let mut freshly_tuned: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut engines: Vec<EngineDecl> = Vec::with_capacity(jobs.len());
    let mut tune_records: Vec<Option<TuneRecord>> = vec![None; jobs.len()];
    let mut tlog = opts.trace.thread("batch_tune", 0);
    for (i, (spec, _)) in jobs.iter().enumerate() {
        let mut decl = match &opts.engine_kind {
            Some(kind) => EngineDecl::auto(kind, threads_per_job)?,
            None => spec.engine,
        };
        if let Some((engine_kind, decl_threads)) = tune_target(decl, opts.tune.is_some()) {
            if cache.is_none() {
                cache = Some(match &plan.cache_path {
                    Some(p) => TuneCache::load(p)?,
                    None => TuneCache::in_memory(),
                });
            }
            let threads = if decl_threads == 0 {
                threads_per_job
            } else {
                decl_threads
            };
            let ropts = ResolveOptions {
                // A dry run plans "without stepping any solver", which
                // rules out wall-clock probes; the analytic model/sim
                // stages still resolve the plan's configurations.
                refine_top: if opts.dry_run { 0 } else { plan.refine_top },
                force: plan.force,
                ..Default::default()
            };
            // Keying the fingerprint by `ropts.machine` ties the cached
            // identity to the machine model `resolve` actually tunes
            // with — they must never diverge.
            let key = TuneKey::for_host(&ropts.machine, spec.dims(), engine_kind, threads);
            let ropts = ResolveOptions {
                // `--force` retunes each distinct key once per batch;
                // repeat jobs on the same key then hit the fresh entry.
                force: ropts.force && !freshly_tuned.contains(&key.id()),
                ..ropts
            };
            let tspan = tlog.start("tune_resolve");
            let r = autotune::resolve(cache.as_mut().expect("cache created above"), &key, &ropts)
                .map_err(|e| format!("scenario `{}`: tuning failed: {e}", spec.name))?;
            if tspan.id() != 0 {
                tlog.end_kv(
                    tspan,
                    vec![
                        ("scenario", spec.name.clone()),
                        ("cache_hit", r.cache_hit.to_string()),
                        ("stage", r.stage.as_str().to_string()),
                    ],
                );
            } else {
                tlog.end(tspan);
            }
            freshly_tuned.insert(key.id());
            decl = tuned_decl(engine_kind, r.config);
            tune_records[i] = Some(TuneRecord {
                cache_hit: r.cache_hit,
                stage: r.stage.as_str().to_string(),
                native_probes: r.native_probes,
                score_mlups: r.score_mlups,
                config: r.config.to_compact(),
            });
        }
        decl.to_engine(spec.dims())
            .map_err(|e| format!("scenario `{}`: [engine] {e}", spec.name))?;
        engines.push(decl);
    }
    drop(tlog);
    // Persist new answers before stepping anything: even an aborted
    // batch keeps its tuning work (a dry run plans but never writes).
    if let Some(c) = &mut cache {
        if !opts.dry_run {
            c.save()?;
        }
    }

    // Spec-declared engines carry their own thread counts; unless the
    // caller pinned the pool size, shrink it so the worst-case demand
    // `workers * max(engine threads)` stays within the budget.
    if opts.workers == 0 {
        let widest = engines.iter().map(EngineDecl::threads).max().unwrap_or(1);
        workers = workers.min((opts.budget.total() / widest).max(1));
    }

    let t0 = std::time::Instant::now();
    let next = AtomicUsize::new(0);
    let in_flight = AtomicUsize::new(0);
    let max_in_flight = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();

    let token = opts.cancel.clone().unwrap_or_else(CancelToken::none);
    // A halted batch reports the cause: the stop flag is an explicit
    // cancel; otherwise the token decides (cancelled beats expired).
    let halted = || -> Option<String> {
        if opts.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst)) {
            return Some(format!("{CANCELLED_PREFIX} stop requested"));
        }
        token.halt_error()
    };
    let stopped = || halted().is_some();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (next, in_flight, max_in_flight) = (&next, &in_flight, &max_in_flight);
            let (jobs, engines, tune_records, slots) = (&jobs, &engines, &tune_records, &slots);
            let (stopped, token) = (&stopped, &token);
            scope.spawn(move || {
                let mut wlog = if opts.trace.is_enabled() {
                    opts.trace.thread(&format!("worker-{w}"), 0)
                } else {
                    opts.trace.thread("", 0)
                };
                loop {
                    // Drain semantics: a set stop flag ends the claim
                    // loop, but the job this worker is already running
                    // completes normally (its outcome is recorded below).
                    if stopped() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let running = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    max_in_flight.fetch_max(running, Ordering::SeqCst);
                    let (spec, job) = &jobs[i];
                    if !opts.quiet {
                        println!(
                            "[{:>2}/{}] {} lambda={} nm on {} ...",
                            i + 1,
                            jobs.len(),
                            job.scenario,
                            job.lambda_nm,
                            engines[i].label()
                        );
                    }
                    let jspan = wlog.start("job");
                    let jspan_id = jspan.id();
                    let outcome = run_job(
                        spec,
                        job,
                        engines[i],
                        i,
                        opts.dry_run,
                        tune_records[i].clone(),
                        &opts.trace,
                        jspan_id,
                        token,
                    );
                    if jspan_id != 0 {
                        wlog.end_kv(
                            jspan,
                            vec![
                                ("scenario", job.scenario.clone()),
                                ("lambda_nm", job.lambda_nm.to_string()),
                                ("engine", engines[i].label()),
                                ("job", i.to_string()),
                            ],
                        );
                    } else {
                        wlog.end(jspan);
                    }
                    if !opts.quiet {
                        let status = match (&outcome.error, outcome.dry_run, outcome.converged) {
                            (Some(e), _, _) => format!("FAILED: {e}"),
                            (None, true, _) => "dry-run ok".to_string(),
                            (None, false, true) => {
                                format!("converged in {} periods", outcome.periods)
                            }
                            (None, false, false) => {
                                format!("stopped after {} periods", outcome.periods)
                            }
                        };
                        println!(
                            "[{:>2}/{}] {} lambda={} nm: {} ({:.2}s)",
                            i + 1,
                            jobs.len(),
                            job.scenario,
                            job.lambda_nm,
                            status,
                            outcome.wall_secs
                        );
                    }
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    store_outcome(&slots[i], outcome);
                }
            });
        }
    });

    let mut outcomes: Vec<JobOutcome> = slots
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            take_outcome(m, || {
                let (spec, job) = &jobs[i];
                let mut o = blank_outcome(
                    spec,
                    job,
                    engines[i],
                    i,
                    opts.dry_run,
                    tune_records[i].clone(),
                );
                o.error = Some(match halted() {
                    Some(h) if h.starts_with(TIMEOUT_PREFIX) => {
                        format!("{TIMEOUT_PREFIX} deadline expired before this job started")
                    }
                    Some(_) => {
                        format!("{CANCELLED_PREFIX} stop requested before this job started")
                    }
                    None => "worker crashed before recording an outcome".to_string(),
                });
                o
            })
        })
        .collect();

    // Artifacts are written after the concurrent phase, in job order,
    // so output files appear deterministically.
    if let Some(dir) = &opts.out_dir {
        if !opts.dry_run {
            write_artifacts(dir, &mut outcomes)?;
        }
    }

    Ok(BatchReport {
        outcomes,
        workers,
        threads_per_job,
        max_in_flight: max_in_flight.load(Ordering::SeqCst),
        wall_secs: t0.elapsed().as_secs_f64(),
    })
}

/// Write an outcome into its slot even when a previous panic poisoned
/// the lock: the payload is a plain `Option` write, so the poison flag
/// carries no information worth aborting for.
fn store_outcome(slot: &Mutex<Option<JobOutcome>>, outcome: JobOutcome) {
    let mut guard = slot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard = Some(outcome);
}

/// Recover a slot's outcome, shrugging off lock poisoning; a slot a
/// crashed worker never filled becomes `fallback()` (a per-job error)
/// instead of aborting the whole batch.
fn take_outcome(
    slot: Mutex<Option<JobOutcome>>,
    fallback: impl FnOnce() -> JobOutcome,
) -> JobOutcome {
    slot.into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .unwrap_or_else(fallback)
}

/// The pre-execution outcome skeleton for one job.
fn blank_outcome(
    spec: &ScenarioSpec,
    job: &ScenarioJob,
    decl: EngineDecl,
    index: usize,
    dry_run: bool,
    tuned: Option<TuneRecord>,
) -> JobOutcome {
    JobOutcome {
        job: index,
        scenario: job.scenario.clone(),
        sweep_index: job.sweep_index,
        lambda_nm: job.lambda_nm,
        lambda_cells: job.lambda_cells,
        dims: format!("{}", spec.dims()),
        spec_hash: spec.content_hash(),
        engine: decl.label(),
        threads: decl.threads(),
        dry_run,
        converged: false,
        periods: 0,
        steps: 0,
        rel_change: f64::INFINITY,
        energy: 0.0,
        back_iteration_cells: 0,
        absorption: Vec::new(),
        intensity_profile: None,
        wall_secs: 0.0,
        error: None,
        artifact: None,
        tuned,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_job(
    spec: &ScenarioSpec,
    job: &ScenarioJob,
    decl: EngineDecl,
    index: usize,
    dry_run: bool,
    tuned: Option<TuneRecord>,
    trace: &em_obs::Recorder,
    trace_parent: u64,
    cancel: &CancelToken,
) -> JobOutcome {
    let t0 = std::time::Instant::now();
    let mut outcome = blank_outcome(spec, job, decl, index, dry_run, tuned);
    // A panicking solver (as opposed to one returning `Err`) must also
    // land in this job's outcome: letting it unwind would poison the
    // job slot and tear down the scoped pool mid-batch.
    let caught =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<(), String> {
            let engine = decl.to_engine(spec.dims())?;
            if dry_run {
                // Prove the scene resolves (materials, preset) without
                // paying for coefficient assembly or stepping.
                spec.build_scene()?;
                return Ok(());
            }
            let mut solver = spec.build_solver(job)?;
            solver.set_recorder(trace.clone(), trace_parent);
            outcome.back_iteration_cells = solver.back_iteration_cells;
            let ConvergenceDecl { tol, max_periods } = spec.convergence;
            let report = solver.run_to_convergence_cancel(&engine, tol, max_periods, cancel)?;
            outcome.converged = report.converged;
            outcome.periods = report.periods;
            outcome.steps = report.steps;
            outcome.rel_change = report.rel_change;
            outcome.energy = solver.fields().energy();
            for slab in &spec.outputs.absorption {
                let a = analysis::absorption_in_slab(
                    solver.fields(),
                    &solver.config.scene,
                    job.lambda_nm,
                    solver.omega,
                    slab.z_lo,
                    slab.z_hi,
                );
                outcome.absorption.push((slab.name.clone(), a));
            }
            if spec.outputs.intensity_profile {
                outcome.intensity_profile = Some(analysis::intensity_profile_z(solver.fields()));
            }
            Ok(())
        }));
    let result =
        caught.unwrap_or_else(|p| Err(format!("job panicked: {}", panic_message(p.as_ref()))));
    if let Err(e) = result {
        outcome.error = Some(e);
    }
    outcome.wall_secs = t0.elapsed().as_secs_f64();
    outcome
}

/// Write one JSON artifact per outcome plus the batch summary
/// JSON/CSV pair into `dir`, recording each artifact path back into
/// its outcome. Shared by the batch runner and `mwd dist run` so a
/// distributed solve lays down byte-comparable artifacts.
pub fn write_artifacts(dir: &Path, outcomes: &mut [JobOutcome]) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create output directory {}: {e}", dir.display()))?;
    // Filenames carry the spec content hash (first 12 of 32 hex digits)
    // so same-named scenarios with different contents — e.g. one
    // generator family under two parameter sets — cannot collide; the
    // set guards the remaining identity components (job index, name,
    // wavelength, hash) against ever coinciding.
    let mut seen = std::collections::HashSet::new();
    for o in outcomes.iter_mut() {
        let name = format!(
            "{:02}_{}_{:04.0}nm_{}.json",
            o.job,
            o.scenario,
            o.lambda_nm,
            &o.spec_hash[..12]
        );
        if !seen.insert(name.clone()) {
            return Err(format!(
                "artifact filename collision: `{name}` would be written twice \
                 (job {}, scenario `{}`)",
                o.job, o.scenario
            ));
        }
        let path = dir.join(name);
        std::fs::write(&path, o.to_json().pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        o.artifact = Some(path);
    }

    let summary = Json::Arr(outcomes.iter().map(|o| o.to_json()).collect());
    let spath = dir.join("batch_summary.json");
    std::fs::write(&spath, summary.pretty())
        .map_err(|e| format!("cannot write {}: {e}", spath.display()))?;

    let mut csv = String::from(
        "job,scenario,lambda_nm,engine,converged,periods,steps,rel_change,energy,wall_secs,error\n",
    );
    for o in outcomes.iter() {
        // Engine labels and error messages contain commas; `{:?}` gives
        // them CSV-safe double quoting (scenario names are restricted to
        // [A-Za-z0-9_-] by validation and need none).
        csv.push_str(&format!(
            "{},{},{},{:?},{},{},{},{:e},{:e},{:.3},{:?}\n",
            o.job,
            o.scenario,
            o.lambda_nm,
            o.engine,
            o.converged,
            o.periods,
            o.steps,
            o.rel_change,
            o.energy,
            o.wall_secs,
            o.error.as_deref().unwrap_or("")
        ));
    }
    let cpath = dir.join("batch_summary.csv");
    std::fs::write(&cpath, csv).map_err(|e| format!("cannot write {}: {e}", cpath.display()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GridSpec, PhysicsSpec, SceneDecl};

    fn tiny_spec(name: &str) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            description: String::new(),
            grid: GridSpec {
                nx: 4,
                ny: 4,
                nz: 24,
            },
            physics: PhysicsSpec {
                lambda_cells: 8.0,
                lambda_nm: 550.0,
                cfl: 0.95,
            },
            pml: Some(crate::spec::PmlDecl::with_thickness(4)),
            source: Some(crate::spec::SourceDecl::x_polarized(18, 1.0)),
            scene: SceneDecl::vacuum(),
            engine: crate::spec::EngineDecl::NaivePeriodicXY,
            convergence: crate::spec::ConvergenceDecl {
                tol: 1e-30, // never converges: deterministic work amount
                max_periods: 2,
            },
            sweep: None,
            workers: 1,
            outputs: Default::default(),
        }
    }

    #[test]
    fn batch_returns_outcomes_in_job_order() {
        let specs = vec![tiny_spec("a"), tiny_spec("b"), tiny_spec("c")];
        let report = run_batch(
            &specs,
            &BatchOptions {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.workers, 2);
        assert!(report.max_in_flight <= 2, "pool must stay bounded");
        let names: Vec<&str> = report
            .outcomes
            .iter()
            .map(|o| o.scenario.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.job, i);
            assert!(o.error.is_none(), "{:?}", o.error);
            assert_eq!(o.periods, 2);
            assert!(o.energy > 0.0);
        }
    }

    #[test]
    fn dry_run_steps_nothing() {
        let specs = vec![tiny_spec("a")];
        let report = run_batch(
            &specs,
            &BatchOptions {
                dry_run: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.outcomes[0].dry_run);
        assert_eq!(report.outcomes[0].steps, 0);
        assert!(report.outcomes[0].error.is_none());
    }

    #[test]
    fn unknown_engine_override_fails_before_running() {
        let specs = vec![tiny_spec("a")];
        let err = run_batch(
            &specs,
            &BatchOptions {
                engine_kind: Some("warp-drive".to_string()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("warp-drive"), "{err}");
    }

    #[test]
    fn empty_batch_is_an_error() {
        assert!(run_batch(&[], &BatchOptions::default()).is_err());
    }

    fn poisoned_slot(initial: Option<JobOutcome>) -> Mutex<Option<JobOutcome>> {
        let slot = Mutex::new(initial);
        // Poison by panicking while holding the lock (what an unwinding
        // worker would have done before the catch_unwind fix).
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = slot.lock().unwrap();
            panic!("poison");
        }));
        assert!(r.is_err());
        assert!(slot.is_poisoned());
        slot
    }

    fn fallback_outcome(name: &str) -> JobOutcome {
        let spec = tiny_spec(name);
        let job = spec.jobs().remove(0);
        blank_outcome(&spec, &job, spec.engine, 0, false, None)
    }

    #[test]
    fn store_outcome_survives_a_poisoned_slot() {
        let slot = poisoned_slot(None);
        store_outcome(&slot, fallback_outcome("stored"));
        let got = take_outcome(slot, || unreachable!("slot was filled"));
        assert_eq!(got.scenario, "stored");
    }

    #[test]
    fn take_outcome_recovers_poisoned_and_empty_slots() {
        // Poisoned but filled: the stored outcome wins.
        let slot = poisoned_slot(Some(fallback_outcome("kept")));
        assert_eq!(take_outcome(slot, || unreachable!()).scenario, "kept");
        // Poisoned and empty: the fallback (a per-job error) is used.
        let slot = poisoned_slot(None);
        let got = take_outcome(slot, || {
            let mut o = fallback_outcome("fell-back");
            o.error = Some("worker crashed".to_string());
            o
        });
        assert_eq!(got.scenario, "fell-back");
        assert!(got.error.is_some());
    }

    #[test]
    fn panicking_job_body_lands_in_its_outcome() {
        let spec = tiny_spec("boom");
        let job = spec.jobs().remove(0);
        // Drive run_job's catch_unwind through a decl whose engine
        // resolution is fine but whose body panics: simulate by calling
        // panic_message directly on the payload shapes catch_unwind
        // produces, and the run_job path with a healthy spec for the
        // no-panic side.
        let ok = run_job(
            &spec,
            &job,
            spec.engine,
            0,
            true,
            None,
            &em_obs::Recorder::disabled(),
            0,
            &CancelToken::none(),
        );
        assert!(ok.error.is_none());
        let s: Box<dyn std::any::Any + Send> = Box::new("str payload");
        assert_eq!(panic_message(s.as_ref()), "str payload");
        let s: Box<dyn std::any::Any + Send> = Box::new("string payload".to_string());
        assert_eq!(panic_message(s.as_ref()), "string payload");
        let s: Box<dyn std::any::Any + Send> = Box::new(17usize);
        assert_eq!(panic_message(s.as_ref()), "non-string panic payload");
    }

    #[test]
    fn preset_stop_flag_cancels_every_job_but_still_writes_the_summary() {
        let dir = std::env::temp_dir().join(format!("mwd_stop_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stop = Arc::new(AtomicBool::new(true));
        let specs = vec![tiny_spec("a"), tiny_spec("b")];
        let report = run_batch(
            &specs,
            &BatchOptions {
                workers: 2,
                out_dir: Some(dir.clone()),
                stop: Some(stop),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.cancelled(), 2, "nothing starts under a set flag");
        assert_eq!(report.failures(), 2);
        for o in &report.outcomes {
            assert_eq!(o.steps, 0, "no solver stepped");
            assert!(
                o.error.as_deref().unwrap().starts_with(CANCELLED_PREFIX),
                "{:?}",
                o.error
            );
        }
        // Graceful shutdown still writes the batch summary + artifacts.
        assert!(dir.join("batch_summary.json").is_file());
        assert!(dir.join("batch_summary.csv").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_deadline_token_times_out_every_job() {
        let token = CancelToken::with_deadline(std::time::Duration::from_millis(0));
        let specs = vec![tiny_spec("a"), tiny_spec("b")];
        let report = run_batch(
            &specs,
            &BatchOptions {
                workers: 2,
                cancel: Some(token),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.timed_out(), 2, "nothing starts past the deadline");
        assert_eq!(report.cancelled(), 0, "timeouts are not cancellations");
        for o in &report.outcomes {
            assert_eq!(o.steps, 0, "no solver stepped");
            assert!(
                o.error.as_deref().unwrap().starts_with(TIMEOUT_PREFIX),
                "{:?}",
                o.error
            );
        }
    }

    #[test]
    fn stop_flag_set_mid_batch_drains_instead_of_aborting() {
        // The flag flips concurrently with the batch; however the race
        // lands, every job must come back either completed or cancelled
        // and the counts must be consistent.
        let stop = Arc::new(AtomicBool::new(false));
        let specs: Vec<ScenarioSpec> = (0..6).map(|i| tiny_spec(&format!("j{i}"))).collect();
        let setter = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                stop.store(true, Ordering::SeqCst);
            })
        };
        let report = run_batch(
            &specs,
            &BatchOptions {
                workers: 1,
                stop: Some(stop),
                ..Default::default()
            },
        )
        .unwrap();
        setter.join().unwrap();
        let completed = report.outcomes.iter().filter(|o| o.error.is_none()).count();
        assert_eq!(completed + report.cancelled(), report.outcomes.len());
        for o in report.outcomes.iter().filter(|o| o.error.is_none()) {
            assert_eq!(o.periods, 2, "drained jobs ran to completion");
        }
    }

    #[test]
    fn canonical_json_strips_wall_clock_but_keeps_results() {
        let specs = vec![tiny_spec("canon")];
        let r1 = run_batch(&specs, &BatchOptions::default()).unwrap();
        let r2 = run_batch(&specs, &BatchOptions::default()).unwrap();
        let (a, b) = (&r1.outcomes[0], &r2.outcomes[0]);
        assert_ne!(
            a.to_json().get("wall_secs"),
            None,
            "full artifact keeps timing"
        );
        let (ca, cb) = (a.to_json_canonical(), b.to_json_canonical());
        assert_eq!(ca.get("wall_secs"), None);
        assert_eq!(ca.get("energy"), cb.get("energy"));
        assert_eq!(
            ca.pretty(),
            cb.pretty(),
            "identical jobs render byte-identical canonical artifacts"
        );
    }

    #[test]
    fn auto_engine_resolves_through_an_in_memory_cache() {
        let mut spec = tiny_spec("auto");
        spec.engine = EngineDecl::Auto { threads: 0 };
        let report = run_batch(
            &[spec],
            &BatchOptions {
                workers: 1,
                threads: Some(1),
                budget: ThreadBudget::new(2),
                ..Default::default()
            },
        )
        .unwrap();
        let o = &report.outcomes[0];
        assert!(o.error.is_none(), "{:?}", o.error);
        let t = o.tuned.as_ref().expect("auto engine records tuning");
        assert!(!t.cache_hit, "in-memory cache starts cold");
        assert_eq!(t.native_probes, 0, "no plan means no native stage");
        assert!(o.engine.starts_with("mwd("), "resolved label: {}", o.engine);
        assert_eq!(o.threads, 1);
        assert!(mwd_core::MwdConfig::from_compact(&t.config).is_ok());
    }
}
