//! The concurrent batch runner.
//!
//! Expands a set of scenario specs (including their wavelength sweeps)
//! into a flat job list and executes it on a bounded pool of worker
//! threads. The pool size and the engine threads available to each job
//! share one [`ThreadBudget`]: auto-sized pools are shrunk until
//! `workers x widest engine` fits the budget, so `batch` never
//! oversubscribes the host no matter how jobs and intra-solve thread
//! groups combine (an explicitly pinned pool size is taken as is).
//!
//! Results come back in deterministic job order regardless of which
//! worker finished first, and — when an output directory is given —
//! are written as one JSON artifact per job plus a `batch_summary.json`
//! / `batch_summary.csv` pair, all after the concurrent phase so the
//! files appear in a stable order.

use crate::json::Json;
use crate::spec::{ConvergenceDecl, EngineDecl, ScenarioJob, ScenarioSpec};
use em_solver::analysis;
use mwd_core::ThreadBudget;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Options for [`run_batch`].
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Worker-pool size; 0 derives it from `budget`, the job count and
    /// the widest engine's thread demand (so the batch never
    /// oversubscribes the budget). An explicit value pins the pool size
    /// and is taken at face value.
    pub workers: usize,
    /// Engine-kind override (`--engine`): replaces every job's engine
    /// with [`EngineDecl::auto`] of this kind.
    pub engine_kind: Option<String>,
    /// Engine threads per job; defaults to the budget's share.
    pub threads: Option<usize>,
    /// Validate, expand and plan, but do not step any solver.
    pub dry_run: bool,
    /// Where to write per-job artifacts and the batch summary; `None`
    /// writes nothing.
    pub out_dir: Option<PathBuf>,
    /// Thread budget shared between workers and intra-solve threads.
    pub budget: ThreadBudget,
    /// Suppress per-job status lines.
    pub quiet: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: 0,
            engine_kind: None,
            threads: None,
            dry_run: false,
            out_dir: None,
            budget: ThreadBudget::host(),
            quiet: true,
        }
    }
}

/// The result of one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Position in the deterministic batch order.
    pub job: usize,
    pub scenario: String,
    pub sweep_index: usize,
    pub lambda_nm: f64,
    pub lambda_cells: f64,
    pub dims: String,
    pub engine: String,
    pub threads: usize,
    pub dry_run: bool,
    pub converged: bool,
    pub periods: usize,
    pub steps: usize,
    pub rel_change: f64,
    pub energy: f64,
    pub back_iteration_cells: usize,
    /// `(slab name, absorbed power)` per requested output slab.
    pub absorption: Vec<(String, f64)>,
    /// Laterally averaged |E|^2(z), if the spec requested it.
    pub intensity_profile: Option<Vec<f64>>,
    pub wall_secs: f64,
    pub error: Option<String>,
    /// Artifact path, once written.
    pub artifact: Option<PathBuf>,
}

impl JobOutcome {
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("job", Json::Int(self.job as i64)),
            ("scenario", Json::str(&self.scenario)),
            ("sweep_index", Json::Int(self.sweep_index as i64)),
            ("lambda_nm", Json::Num(self.lambda_nm)),
            ("lambda_cells", Json::Num(self.lambda_cells)),
            ("dims", Json::str(&self.dims)),
            ("engine", Json::str(&self.engine)),
            ("threads", Json::Int(self.threads as i64)),
            ("dry_run", Json::Bool(self.dry_run)),
            ("converged", Json::Bool(self.converged)),
            ("periods", Json::Int(self.periods as i64)),
            ("steps", Json::Int(self.steps as i64)),
            ("rel_change", Json::Num(self.rel_change)),
            ("energy", Json::Num(self.energy)),
            (
                "back_iteration_cells",
                Json::Int(self.back_iteration_cells as i64),
            ),
            ("wall_secs", Json::Num(self.wall_secs)),
        ];
        if !self.absorption.is_empty() {
            pairs.push((
                "absorption",
                Json::Obj(
                    self.absorption
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ));
        }
        if let Some(profile) = &self.intensity_profile {
            pairs.push((
                "intensity_profile",
                Json::Arr(profile.iter().map(|&v| Json::Num(v)).collect()),
            ));
        }
        match &self.error {
            Some(e) => pairs.push(("error", Json::str(e))),
            None => pairs.push(("error", Json::Null)),
        }
        Json::obj(pairs)
    }
}

/// What [`run_batch`] returns: ordered outcomes plus pool telemetry.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One outcome per job, in deterministic job order.
    pub outcomes: Vec<JobOutcome>,
    /// Worker-pool size used.
    pub workers: usize,
    /// Engine threads granted to each job.
    pub threads_per_job: usize,
    /// Peak number of jobs observed running simultaneously.
    pub max_in_flight: usize,
    pub wall_secs: f64,
}

impl BatchReport {
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| o.error.is_some()).count()
    }
}

/// Execute every job of every spec on a bounded worker pool.
///
/// Fails fast (before any solver runs) if a spec does not validate or
/// the engine override is unknown; individual job failures during the
/// run are reported per outcome instead of aborting the batch.
pub fn run_batch(specs: &[ScenarioSpec], opts: &BatchOptions) -> Result<BatchReport, String> {
    for spec in specs {
        spec.validate()?;
    }

    // Expand sweeps into the flat, deterministic job list.
    let mut jobs: Vec<(&ScenarioSpec, ScenarioJob)> = Vec::new();
    for spec in specs {
        for job in spec.jobs() {
            jobs.push((spec, job));
        }
    }
    if jobs.is_empty() {
        return Err("batch contains no jobs".to_string());
    }

    let mut workers = if opts.workers > 0 {
        opts.workers.min(jobs.len())
    } else {
        opts.budget.split(jobs.len()).workers
    };
    // Each concurrent job's engine threads come out of the same budget
    // as the workers themselves: an explicit worker count (e.g. `mwd
    // run`'s sequential 1) grants each job a larger share.
    let threads_per_job = opts
        .threads
        .unwrap_or_else(|| opts.budget.total() / workers)
        .max(1);

    // Resolve every job's engine up front so `--engine` typos and
    // engine/grid mismatches fail before work starts.
    let mut engines: Vec<EngineDecl> = Vec::with_capacity(jobs.len());
    for (spec, _) in &jobs {
        let decl = match &opts.engine_kind {
            Some(kind) => EngineDecl::auto(kind, threads_per_job)?,
            None => spec.engine,
        };
        decl.to_engine(spec.dims())
            .map_err(|e| format!("scenario `{}`: [engine] {e}", spec.name))?;
        engines.push(decl);
    }

    // Spec-declared engines carry their own thread counts; unless the
    // caller pinned the pool size, shrink it so the worst-case demand
    // `workers * max(engine threads)` stays within the budget.
    if opts.workers == 0 {
        let widest = engines.iter().map(EngineDecl::threads).max().unwrap_or(1);
        workers = workers.min((opts.budget.total() / widest).max(1));
    }

    let t0 = std::time::Instant::now();
    let next = AtomicUsize::new(0);
    let in_flight = AtomicUsize::new(0);
    let max_in_flight = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let running = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                max_in_flight.fetch_max(running, Ordering::SeqCst);
                let (spec, job) = &jobs[i];
                if !opts.quiet {
                    println!(
                        "[{:>2}/{}] {} lambda={} nm on {} ...",
                        i + 1,
                        jobs.len(),
                        job.scenario,
                        job.lambda_nm,
                        engines[i].label()
                    );
                }
                let outcome = run_job(spec, job, engines[i], i, opts.dry_run);
                if !opts.quiet {
                    let status = match (&outcome.error, outcome.dry_run, outcome.converged) {
                        (Some(e), _, _) => format!("FAILED: {e}"),
                        (None, true, _) => "dry-run ok".to_string(),
                        (None, false, true) => format!("converged in {} periods", outcome.periods),
                        (None, false, false) => {
                            format!("stopped after {} periods", outcome.periods)
                        }
                    };
                    println!(
                        "[{:>2}/{}] {} lambda={} nm: {} ({:.2}s)",
                        i + 1,
                        jobs.len(),
                        job.scenario,
                        job.lambda_nm,
                        status,
                        outcome.wall_secs
                    );
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });

    let mut outcomes: Vec<JobOutcome> = slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every job slot is filled"))
        .collect();

    // Artifacts are written after the concurrent phase, in job order,
    // so output files appear deterministically.
    if let Some(dir) = &opts.out_dir {
        if !opts.dry_run {
            write_artifacts(dir, &mut outcomes)?;
        }
    }

    Ok(BatchReport {
        outcomes,
        workers,
        threads_per_job,
        max_in_flight: max_in_flight.load(Ordering::SeqCst),
        wall_secs: t0.elapsed().as_secs_f64(),
    })
}

fn run_job(
    spec: &ScenarioSpec,
    job: &ScenarioJob,
    decl: EngineDecl,
    index: usize,
    dry_run: bool,
) -> JobOutcome {
    let t0 = std::time::Instant::now();
    let mut outcome = JobOutcome {
        job: index,
        scenario: job.scenario.clone(),
        sweep_index: job.sweep_index,
        lambda_nm: job.lambda_nm,
        lambda_cells: job.lambda_cells,
        dims: format!("{}", spec.dims()),
        engine: decl.label(),
        threads: decl.threads(),
        dry_run,
        converged: false,
        periods: 0,
        steps: 0,
        rel_change: f64::INFINITY,
        energy: 0.0,
        back_iteration_cells: 0,
        absorption: Vec::new(),
        intensity_profile: None,
        wall_secs: 0.0,
        error: None,
        artifact: None,
    };
    let result = (|| -> Result<(), String> {
        let engine = decl.to_engine(spec.dims())?;
        if dry_run {
            // Prove the scene resolves (materials, preset) without
            // paying for coefficient assembly or stepping.
            spec.build_scene()?;
            return Ok(());
        }
        let mut solver = spec.build_solver(job)?;
        outcome.back_iteration_cells = solver.back_iteration_cells;
        let ConvergenceDecl { tol, max_periods } = spec.convergence;
        let report = solver.run_to_convergence(&engine, tol, max_periods)?;
        outcome.converged = report.converged;
        outcome.periods = report.periods;
        outcome.steps = report.steps;
        outcome.rel_change = report.rel_change;
        outcome.energy = solver.fields().energy();
        for slab in &spec.outputs.absorption {
            let a = analysis::absorption_in_slab(
                solver.fields(),
                &solver.config.scene,
                job.lambda_nm,
                solver.omega,
                slab.z_lo,
                slab.z_hi,
            );
            outcome.absorption.push((slab.name.clone(), a));
        }
        if spec.outputs.intensity_profile {
            outcome.intensity_profile = Some(analysis::intensity_profile_z(solver.fields()));
        }
        Ok(())
    })();
    if let Err(e) = result {
        outcome.error = Some(e);
    }
    outcome.wall_secs = t0.elapsed().as_secs_f64();
    outcome
}

fn write_artifacts(dir: &Path, outcomes: &mut [JobOutcome]) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create output directory {}: {e}", dir.display()))?;
    for o in outcomes.iter_mut() {
        let path = dir.join(format!(
            "{:02}_{}_{:04.0}nm.json",
            o.job, o.scenario, o.lambda_nm
        ));
        std::fs::write(&path, o.to_json().pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        o.artifact = Some(path);
    }

    let summary = Json::Arr(outcomes.iter().map(|o| o.to_json()).collect());
    let spath = dir.join("batch_summary.json");
    std::fs::write(&spath, summary.pretty())
        .map_err(|e| format!("cannot write {}: {e}", spath.display()))?;

    let mut csv = String::from(
        "job,scenario,lambda_nm,engine,converged,periods,steps,rel_change,energy,wall_secs,error\n",
    );
    for o in outcomes.iter() {
        // Engine labels and error messages contain commas; `{:?}` gives
        // them CSV-safe double quoting (scenario names are restricted to
        // [A-Za-z0-9_-] by validation and need none).
        csv.push_str(&format!(
            "{},{},{},{:?},{},{},{},{:e},{:e},{:.3},{:?}\n",
            o.job,
            o.scenario,
            o.lambda_nm,
            o.engine,
            o.converged,
            o.periods,
            o.steps,
            o.rel_change,
            o.energy,
            o.wall_secs,
            o.error.as_deref().unwrap_or("")
        ));
    }
    let cpath = dir.join("batch_summary.csv");
    std::fs::write(&cpath, csv).map_err(|e| format!("cannot write {}: {e}", cpath.display()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GridSpec, PhysicsSpec, SceneDecl};

    fn tiny_spec(name: &str) -> ScenarioSpec {
        ScenarioSpec {
            name: name.to_string(),
            description: String::new(),
            grid: GridSpec {
                nx: 4,
                ny: 4,
                nz: 24,
            },
            physics: PhysicsSpec {
                lambda_cells: 8.0,
                lambda_nm: 550.0,
                cfl: 0.95,
            },
            pml: Some(crate::spec::PmlDecl::with_thickness(4)),
            source: Some(crate::spec::SourceDecl::x_polarized(18, 1.0)),
            scene: SceneDecl::vacuum(),
            engine: crate::spec::EngineDecl::NaivePeriodicXY,
            convergence: crate::spec::ConvergenceDecl {
                tol: 1e-30, // never converges: deterministic work amount
                max_periods: 2,
            },
            sweep: None,
            outputs: Default::default(),
        }
    }

    #[test]
    fn batch_returns_outcomes_in_job_order() {
        let specs = vec![tiny_spec("a"), tiny_spec("b"), tiny_spec("c")];
        let report = run_batch(
            &specs,
            &BatchOptions {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.workers, 2);
        assert!(report.max_in_flight <= 2, "pool must stay bounded");
        let names: Vec<&str> = report
            .outcomes
            .iter()
            .map(|o| o.scenario.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.job, i);
            assert!(o.error.is_none(), "{:?}", o.error);
            assert_eq!(o.periods, 2);
            assert!(o.energy > 0.0);
        }
    }

    #[test]
    fn dry_run_steps_nothing() {
        let specs = vec![tiny_spec("a")];
        let report = run_batch(
            &specs,
            &BatchOptions {
                dry_run: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.outcomes[0].dry_run);
        assert_eq!(report.outcomes[0].steps, 0);
        assert!(report.outcomes[0].error.is_none());
    }

    #[test]
    fn unknown_engine_override_fails_before_running() {
        let specs = vec![tiny_spec("a")];
        let err = run_batch(
            &specs,
            &BatchOptions {
                engine_kind: Some("warp-drive".to_string()),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("warp-drive"), "{err}");
    }

    #[test]
    fn empty_batch_is_an_error() {
        assert!(run_batch(&[], &BatchOptions::default()).is_err());
    }
}
