//! [`ScenarioSpec`] ⇄ TOML.
//!
//! The mapping is explicit, field by field, with unknown-key detection
//! per section so typos fail loudly (`unknown key `sigmamax` in [pml]`)
//! instead of silently using a default. Serialization emits every
//! section the spec holds, so `from_toml_str(to_toml_string(s)) == s`.

use crate::spec::{
    ConvergenceDecl, EngineDecl, GridSpec, LayerDecl, OutputsDecl, PhysicsSpec, PmlDecl,
    ScenarioSpec, SceneDecl, SlabDecl, SourceDecl, SphereDecl, SweepDecl, SweepPoint, TextureDecl,
};
use crate::toml::{self, Entry, Table, Value};
use em_field::Axis;

// ------------------------------------------------------------ reading

fn check_keys(t: &Table, ctx: &str, allowed: &[&str]) -> Result<(), String> {
    for k in t.keys() {
        if !allowed.contains(&k) {
            return Err(format!(
                "unknown key `{k}` in {ctx} (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn req<'a>(t: &'a Table, key: &str, ctx: &str) -> Result<&'a Entry, String> {
    t.get(key)
        .ok_or_else(|| format!("{ctx}: missing key `{key}`"))
}

fn get_str(t: &Table, key: &str, ctx: &str) -> Result<String, String> {
    match req(t, key, ctx)? {
        Entry::Value(Value::Str(s)) => Ok(s.clone()),
        other => Err(format!("{ctx}: `{key}` must be a string, got {other:?}")),
    }
}

fn get_i64(t: &Table, key: &str, ctx: &str) -> Result<i64, String> {
    match req(t, key, ctx)? {
        Entry::Value(Value::Int(i)) => Ok(*i),
        other => Err(format!("{ctx}: `{key}` must be an integer, got {other:?}")),
    }
}

fn get_usize(t: &Table, key: &str, ctx: &str) -> Result<usize, String> {
    let i = get_i64(t, key, ctx)?;
    usize::try_from(i).map_err(|_| format!("{ctx}: `{key}` must be non-negative, got {i}"))
}

fn get_u64(t: &Table, key: &str, ctx: &str) -> Result<u64, String> {
    let i = get_i64(t, key, ctx)?;
    u64::try_from(i).map_err(|_| format!("{ctx}: `{key}` must be non-negative, got {i}"))
}

fn get_f64(t: &Table, key: &str, ctx: &str) -> Result<f64, String> {
    match req(t, key, ctx)? {
        Entry::Value(Value::Float(f)) => Ok(*f),
        Entry::Value(Value::Int(i)) => Ok(*i as f64),
        other => Err(format!("{ctx}: `{key}` must be a number, got {other:?}")),
    }
}

fn get_bool_or(t: &Table, key: &str, ctx: &str, default: bool) -> Result<bool, String> {
    match t.get(key) {
        None => Ok(default),
        Some(Entry::Value(Value::Bool(b))) => Ok(*b),
        Some(other) => Err(format!("{ctx}: `{key}` must be a boolean, got {other:?}")),
    }
}

fn get_str_array(t: &Table, key: &str, ctx: &str) -> Result<Vec<String>, String> {
    match req(t, key, ctx)? {
        Entry::Value(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => Ok(s.clone()),
                other => Err(format!(
                    "{ctx}: `{key}` must contain only strings, got {other:?}"
                )),
            })
            .collect(),
        other => Err(format!("{ctx}: `{key}` must be an array, got {other:?}")),
    }
}

fn get_f64_triple(t: &Table, key: &str, ctx: &str) -> Result<[f64; 3], String> {
    let items = match req(t, key, ctx)? {
        Entry::Value(Value::Array(items)) => items,
        other => Err(format!("{ctx}: `{key}` must be an array, got {other:?}"))?,
    };
    if items.len() != 3 {
        return Err(format!(
            "{ctx}: `{key}` must have exactly 3 components, got {}",
            items.len()
        ));
    }
    let mut out = [0.0; 3];
    for (i, v) in items.iter().enumerate() {
        out[i] = match v {
            Value::Float(f) => *f,
            Value::Int(n) => *n as f64,
            other => Err(format!(
                "{ctx}: `{key}` must contain only numbers, got {other:?}"
            ))?,
        };
    }
    Ok(out)
}

fn get_table_opt<'a>(t: &'a Table, key: &str, ctx: &str) -> Result<Option<&'a Table>, String> {
    match t.get(key) {
        None => Ok(None),
        Some(Entry::Table(sub)) => Ok(Some(sub)),
        Some(_) => Err(format!("{ctx}: `{key}` must be a table (`[{key}]`)")),
    }
}

fn get_tables<'a>(t: &'a Table, key: &str, ctx: &str) -> Result<Vec<&'a Table>, String> {
    match t.get(key) {
        None => Ok(Vec::new()),
        Some(Entry::Tables(v)) => Ok(v.iter().collect()),
        Some(_) => Err(format!(
            "{ctx}: `{key}` must be an array of tables (`[[{ctx_key}]]`)",
            ctx_key = key
        )),
    }
}

fn texture_from(t: &Table, ctx: &str) -> Result<TextureDecl, String> {
    check_keys(t, ctx, &["amplitude", "period", "seed"])?;
    Ok(TextureDecl {
        amplitude: get_f64(t, "amplitude", ctx)?,
        period: get_f64(t, "period", ctx)?,
        seed: get_u64(t, "seed", ctx)?,
    })
}

fn scene_from(t: &Table) -> Result<SceneDecl, String> {
    let ctx = "[scene]";
    if t.get("preset").is_some() {
        check_keys(t, ctx, &["preset"])?;
        return Ok(SceneDecl::Preset {
            preset: get_str(t, "preset", ctx)?,
        });
    }
    check_keys(t, ctx, &["materials", "background", "layer", "sphere"])?;
    let materials = get_str_array(t, "materials", ctx)?;
    let background = get_str(t, "background", ctx)?;
    let mut layers = Vec::new();
    for (i, lt) in get_tables(t, "layer", ctx)?.into_iter().enumerate() {
        let lctx = format!("[[scene.layer]] #{i}");
        check_keys(
            lt,
            &lctx,
            &["material", "z_lo", "z_hi", "top_texture", "bottom_texture"],
        )?;
        let tex = |key: &str| -> Result<Option<TextureDecl>, String> {
            match get_table_opt(lt, key, &lctx)? {
                None => Ok(None),
                Some(tt) => Ok(Some(texture_from(tt, &format!("{lctx}.{key}"))?)),
            }
        };
        layers.push(LayerDecl {
            material: get_str(lt, "material", &lctx)?,
            z_lo: get_f64(lt, "z_lo", &lctx)?,
            z_hi: get_f64(lt, "z_hi", &lctx)?,
            top_texture: tex("top_texture")?,
            bottom_texture: tex("bottom_texture")?,
        });
    }
    let mut spheres = Vec::new();
    for (i, st) in get_tables(t, "sphere", ctx)?.into_iter().enumerate() {
        let sctx = format!("[[scene.sphere]] #{i}");
        check_keys(st, &sctx, &["material", "center", "radius"])?;
        spheres.push(SphereDecl {
            material: get_str(st, "material", &sctx)?,
            center: get_f64_triple(st, "center", &sctx)?,
            radius: get_f64(st, "radius", &sctx)?,
        });
    }
    Ok(SceneDecl::Explicit {
        materials,
        background,
        layers,
        spheres,
    })
}

fn engine_from(t: &Table) -> Result<EngineDecl, String> {
    let ctx = "[engine]";
    let kind = get_str(t, "kind", ctx)?;
    match kind.as_str() {
        "auto" => {
            check_keys(t, ctx, &["kind", "threads"])?;
            Ok(EngineDecl::Auto {
                threads: match t.get("threads") {
                    None => 0,
                    Some(_) => get_usize(t, "threads", ctx)?,
                },
            })
        }
        "naive" => {
            check_keys(t, ctx, &["kind"])?;
            Ok(EngineDecl::Naive)
        }
        "naive-periodic-xy" => {
            check_keys(t, ctx, &["kind"])?;
            Ok(EngineDecl::NaivePeriodicXY)
        }
        "spatial" => {
            check_keys(t, ctx, &["kind", "by", "bz", "threads"])?;
            Ok(EngineDecl::Spatial {
                by: get_usize(t, "by", ctx)?,
                bz: get_usize(t, "bz", ctx)?,
                threads: get_usize(t, "threads", ctx)?,
            })
        }
        "mwd" | "mwd-periodic-x" => {
            check_keys(
                t,
                ctx,
                &["kind", "dw", "bz", "tg_x", "tg_z", "tg_c", "groups"],
            )?;
            let dw = get_usize(t, "dw", ctx)?;
            let bz = get_usize(t, "bz", ctx)?;
            let tg_x = get_usize(t, "tg_x", ctx)?;
            let tg_z = get_usize(t, "tg_z", ctx)?;
            let tg_c = get_usize(t, "tg_c", ctx)?;
            let groups = get_usize(t, "groups", ctx)?;
            Ok(if kind == "mwd" {
                EngineDecl::Mwd {
                    dw,
                    bz,
                    tg_x,
                    tg_z,
                    tg_c,
                    groups,
                }
            } else {
                EngineDecl::MwdPeriodicX {
                    dw,
                    bz,
                    tg_x,
                    tg_z,
                    tg_c,
                    groups,
                }
            })
        }
        other => Err(format!(
            "{ctx}: unknown engine kind `{other}` (known: {})",
            EngineDecl::KINDS.join(", ")
        )),
    }
}

impl ScenarioSpec {
    /// Parse a scenario document (does not [`validate`](Self::validate)).
    pub fn from_toml_str(text: &str) -> Result<ScenarioSpec, String> {
        Self::from_toml(&toml::parse(text)?)
    }

    pub fn from_toml(root: &Table) -> Result<ScenarioSpec, String> {
        check_keys(
            root,
            "the scenario root",
            &[
                "name",
                "description",
                "grid",
                "physics",
                "pml",
                "source",
                "scene",
                "engine",
                "convergence",
                "sweep",
                "outputs",
                "workers",
            ],
        )?;
        let name = get_str(root, "name", "the scenario root")?;
        let description = match root.get("description") {
            None => String::new(),
            Some(_) => get_str(root, "description", "the scenario root")?,
        };

        let gt = get_table_opt(root, "grid", "the scenario root")?
            .ok_or("the scenario root: missing `[grid]` section")?;
        check_keys(gt, "[grid]", &["nx", "ny", "nz"])?;
        let grid = GridSpec {
            nx: get_usize(gt, "nx", "[grid]")?,
            ny: get_usize(gt, "ny", "[grid]")?,
            nz: get_usize(gt, "nz", "[grid]")?,
        };

        let pt = get_table_opt(root, "physics", "the scenario root")?
            .ok_or("the scenario root: missing `[physics]` section")?;
        check_keys(pt, "[physics]", &["lambda_cells", "lambda_nm", "cfl"])?;
        let physics = PhysicsSpec {
            lambda_cells: get_f64(pt, "lambda_cells", "[physics]")?,
            lambda_nm: get_f64(pt, "lambda_nm", "[physics]")?,
            cfl: match pt.get("cfl") {
                None => 0.95,
                Some(_) => get_f64(pt, "cfl", "[physics]")?,
            },
        };

        let pml = match get_table_opt(root, "pml", "the scenario root")? {
            None => None,
            Some(t) => {
                check_keys(t, "[pml]", &["thickness", "order", "sigma_max"])?;
                let thickness = get_usize(t, "thickness", "[pml]")?;
                let defaults = PmlDecl::with_thickness(thickness);
                Some(PmlDecl {
                    thickness,
                    order: match t.get("order") {
                        None => defaults.order,
                        Some(_) => get_f64(t, "order", "[pml]")?,
                    },
                    sigma_max: match t.get("sigma_max") {
                        None => defaults.sigma_max,
                        Some(_) => get_f64(t, "sigma_max", "[pml]")?,
                    },
                })
            }
        };

        let source = match get_table_opt(root, "source", "the scenario root")? {
            None => None,
            Some(t) => {
                check_keys(t, "[source]", &["z_plane", "amplitude", "polarization"])?;
                let pol = match t.get("polarization") {
                    None => Axis::X,
                    Some(_) => match get_str(t, "polarization", "[source]")?.as_str() {
                        "x" => Axis::X,
                        "y" => Axis::Y,
                        other => {
                            return Err(format!(
                                "[source]: polarization must be \"x\" or \"y\", got \"{other}\""
                            ))
                        }
                    },
                };
                Some(SourceDecl {
                    z_plane: get_usize(t, "z_plane", "[source]")?,
                    amplitude: match t.get("amplitude") {
                        None => 1.0,
                        Some(_) => get_f64(t, "amplitude", "[source]")?,
                    },
                    polarization: pol,
                })
            }
        };

        let st = get_table_opt(root, "scene", "the scenario root")?
            .ok_or("the scenario root: missing `[scene]` section")?;
        let scene = scene_from(st)?;

        let engine = match get_table_opt(root, "engine", "the scenario root")? {
            None => EngineDecl::NaivePeriodicXY,
            Some(t) => engine_from(t)?,
        };

        let convergence = match get_table_opt(root, "convergence", "the scenario root")? {
            None => ConvergenceDecl::default(),
            Some(t) => {
                check_keys(t, "[convergence]", &["tol", "max_periods"])?;
                ConvergenceDecl {
                    tol: get_f64(t, "tol", "[convergence]")?,
                    max_periods: get_usize(t, "max_periods", "[convergence]")?,
                }
            }
        };

        let sweep = match get_table_opt(root, "sweep", "the scenario root")? {
            None => None,
            Some(t) => {
                check_keys(t, "[sweep]", &["lambda"])?;
                let mut lambdas = Vec::new();
                for (i, lt) in get_tables(t, "lambda", "[sweep]")?.into_iter().enumerate() {
                    let ctx = format!("[[sweep.lambda]] #{i}");
                    check_keys(lt, &ctx, &["nm", "cells"])?;
                    lambdas.push(SweepPoint {
                        nm: get_f64(lt, "nm", &ctx)?,
                        cells: get_f64(lt, "cells", &ctx)?,
                    });
                }
                Some(SweepDecl { lambdas })
            }
        };

        let outputs = match get_table_opt(root, "outputs", "the scenario root")? {
            None => OutputsDecl::default(),
            Some(t) => {
                check_keys(t, "[outputs]", &["intensity_profile", "absorption"])?;
                let mut absorption = Vec::new();
                for (i, at) in get_tables(t, "absorption", "[outputs]")?
                    .into_iter()
                    .enumerate()
                {
                    let ctx = format!("[[outputs.absorption]] #{i}");
                    check_keys(at, &ctx, &["name", "z_lo", "z_hi"])?;
                    absorption.push(SlabDecl {
                        name: get_str(at, "name", &ctx)?,
                        z_lo: get_usize(at, "z_lo", &ctx)?,
                        z_hi: get_usize(at, "z_hi", &ctx)?,
                    });
                }
                OutputsDecl {
                    intensity_profile: get_bool_or(t, "intensity_profile", "[outputs]", false)?,
                    absorption,
                }
            }
        };

        let workers = match root.get("workers") {
            None => 1,
            Some(_) => get_usize(root, "workers", "the scenario root")?,
        };

        Ok(ScenarioSpec {
            name,
            description,
            grid,
            physics,
            pml,
            source,
            scene,
            engine,
            convergence,
            sweep,
            outputs,
            workers,
        })
    }

    // -------------------------------------------------------- writing

    pub fn to_toml_string(&self) -> String {
        toml::serialize(&self.to_toml())
    }

    pub fn to_toml(&self) -> Table {
        let mut root = Table::new();
        root.set_value("name", Value::Str(self.name.clone()));
        root.set_value("description", Value::Str(self.description.clone()));
        // Omitted at the default so pre-dist canonical documents (and
        // every derived content hash) are byte-for-byte unchanged.
        if self.workers != 1 {
            root.set_value("workers", Value::Int(self.workers as i64));
        }

        let mut grid = Table::new();
        grid.set_value("nx", Value::Int(self.grid.nx as i64));
        grid.set_value("ny", Value::Int(self.grid.ny as i64));
        grid.set_value("nz", Value::Int(self.grid.nz as i64));
        root.set("grid", Entry::Table(grid));

        let mut physics = Table::new();
        physics.set_value("lambda_cells", Value::Float(self.physics.lambda_cells));
        physics.set_value("lambda_nm", Value::Float(self.physics.lambda_nm));
        physics.set_value("cfl", Value::Float(self.physics.cfl));
        root.set("physics", Entry::Table(physics));

        if let Some(p) = &self.pml {
            let mut pml = Table::new();
            pml.set_value("thickness", Value::Int(p.thickness as i64));
            pml.set_value("order", Value::Float(p.order));
            pml.set_value("sigma_max", Value::Float(p.sigma_max));
            root.set("pml", Entry::Table(pml));
        }

        if let Some(s) = &self.source {
            let mut src = Table::new();
            src.set_value("z_plane", Value::Int(s.z_plane as i64));
            src.set_value("amplitude", Value::Float(s.amplitude));
            let pol = match s.polarization {
                Axis::Y => "y",
                _ => "x",
            };
            src.set_value("polarization", Value::Str(pol.to_string()));
            root.set("source", Entry::Table(src));
        }

        root.set("scene", Entry::Table(self.scene_to_toml()));
        root.set("engine", Entry::Table(self.engine_to_toml()));

        let mut conv = Table::new();
        conv.set_value("tol", Value::Float(self.convergence.tol));
        conv.set_value(
            "max_periods",
            Value::Int(self.convergence.max_periods as i64),
        );
        root.set("convergence", Entry::Table(conv));

        if let Some(sweep) = &self.sweep {
            let mut st = Table::new();
            let points: Vec<Table> = sweep
                .lambdas
                .iter()
                .map(|p| {
                    let mut t = Table::new();
                    t.set_value("nm", Value::Float(p.nm));
                    t.set_value("cells", Value::Float(p.cells));
                    t
                })
                .collect();
            st.set("lambda", Entry::Tables(points));
            root.set("sweep", Entry::Table(st));
        }

        let mut outputs = Table::new();
        outputs.set_value(
            "intensity_profile",
            Value::Bool(self.outputs.intensity_profile),
        );
        if !self.outputs.absorption.is_empty() {
            let slabs: Vec<Table> = self
                .outputs
                .absorption
                .iter()
                .map(|s| {
                    let mut t = Table::new();
                    t.set_value("name", Value::Str(s.name.clone()));
                    t.set_value("z_lo", Value::Int(s.z_lo as i64));
                    t.set_value("z_hi", Value::Int(s.z_hi as i64));
                    t
                })
                .collect();
            outputs.set("absorption", Entry::Tables(slabs));
        }
        root.set("outputs", Entry::Table(outputs));
        root
    }

    fn scene_to_toml(&self) -> Table {
        let mut scene = Table::new();
        match &self.scene {
            SceneDecl::Preset { preset } => {
                scene.set_value("preset", Value::Str(preset.clone()));
            }
            SceneDecl::Explicit {
                materials,
                background,
                layers,
                spheres,
            } => {
                scene.set_value(
                    "materials",
                    Value::Array(materials.iter().map(|m| Value::Str(m.clone())).collect()),
                );
                scene.set_value("background", Value::Str(background.clone()));
                if !layers.is_empty() {
                    let lts: Vec<Table> = layers.iter().map(layer_to_toml).collect();
                    scene.set("layer", Entry::Tables(lts));
                }
                if !spheres.is_empty() {
                    let sts: Vec<Table> = spheres
                        .iter()
                        .map(|s| {
                            let mut t = Table::new();
                            t.set_value("material", Value::Str(s.material.clone()));
                            t.set_value(
                                "center",
                                Value::Array(s.center.iter().map(|&c| Value::Float(c)).collect()),
                            );
                            t.set_value("radius", Value::Float(s.radius));
                            t
                        })
                        .collect();
                    scene.set("sphere", Entry::Tables(sts));
                }
            }
        }
        scene
    }

    fn engine_to_toml(&self) -> Table {
        let mut t = Table::new();
        t.set_value("kind", Value::Str(self.engine.kind().to_string()));
        match self.engine {
            EngineDecl::Auto { threads } => {
                t.set_value("threads", Value::Int(threads as i64));
            }
            EngineDecl::Naive | EngineDecl::NaivePeriodicXY => {}
            EngineDecl::Spatial { by, bz, threads } => {
                t.set_value("by", Value::Int(by as i64));
                t.set_value("bz", Value::Int(bz as i64));
                t.set_value("threads", Value::Int(threads as i64));
            }
            EngineDecl::Mwd {
                dw,
                bz,
                tg_x,
                tg_z,
                tg_c,
                groups,
            }
            | EngineDecl::MwdPeriodicX {
                dw,
                bz,
                tg_x,
                tg_z,
                tg_c,
                groups,
            } => {
                t.set_value("dw", Value::Int(dw as i64));
                t.set_value("bz", Value::Int(bz as i64));
                t.set_value("tg_x", Value::Int(tg_x as i64));
                t.set_value("tg_z", Value::Int(tg_z as i64));
                t.set_value("tg_c", Value::Int(tg_c as i64));
                t.set_value("groups", Value::Int(groups as i64));
            }
        }
        t
    }
}

fn layer_to_toml(l: &LayerDecl) -> Table {
    let mut t = Table::new();
    t.set_value("material", Value::Str(l.material.clone()));
    t.set_value("z_lo", Value::Float(l.z_lo));
    t.set_value("z_hi", Value::Float(l.z_hi));
    for (key, tex) in [
        ("top_texture", &l.top_texture),
        ("bottom_texture", &l.bottom_texture),
    ] {
        if let Some(tex) = tex {
            let mut tt = Table::new();
            tt.set_value("amplitude", Value::Float(tex.amplitude));
            tt.set_value("period", Value::Float(tex.period));
            tt.set_value("seed", Value::Int(tex.seed as i64));
            t.set(key, Entry::Table(tt));
        }
    }
    t
}
