//! A minimal JSON writer for result artifacts.
//!
//! Output-only (the repo never reads JSON back), hand-rolled for the
//! same reason as the TOML module: no crates.io in this environment.
//! Objects keep insertion order so artifacts are deterministic and
//! diffable across runs.

use std::fmt::Write as _;

/// A JSON value. Build with the constructors, render with
/// [`Json::pretty`] or [`Json::compact`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Render on one line.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // Shortest round-trip form; valid JSON for finite values.
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no Inf/NaN literal.
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => render_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].render(out, ind)
            }),
            Json::Obj(pairs) => render_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                escape_into(out, &pairs[i].0);
                out.push_str(": ");
                pairs[i].1.render(out, ind);
            }),
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level + 1));
            item(out, i, Some(level + 1));
        } else {
            item(out, i, None);
        }
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                out.push(' ');
            }
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_renders_nested_structures() {
        let j = Json::obj(vec![
            ("name", Json::str("solar-cell")),
            ("converged", Json::Bool(true)),
            ("periods", Json::Int(12)),
            ("rel", Json::Num(0.5)),
            ("tags", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("none", Json::Null),
        ]);
        assert_eq!(
            j.compact(),
            r#"{"name": "solar-cell", "converged": true, "periods": 12, "rel": 0.5, "tags": [1, 2], "none": null}"#
        );
    }

    #[test]
    fn pretty_indents_and_terminates_with_newline() {
        let j = Json::obj(vec![("a", Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(j.pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::str("a\"b\\c\nd");
        assert_eq!(j.compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::INFINITY).compact(), "null");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
        assert_eq!(Json::Num(2.5).compact(), "2.5");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).compact(), "{}");
    }
}
