//! Acceptance tests for the concurrent batch runner: bounded worker
//! pool with real concurrency, one JSON artifact per job, deterministic
//! output ordering, and thread-budget sharing.

use em_scenarios::runner::{run_batch, BatchOptions};
use em_scenarios::spec::{
    ConvergenceDecl, EngineDecl, GridSpec, PhysicsSpec, PmlDecl, ScenarioSpec, SceneDecl,
    SourceDecl,
};
use mwd_core::ThreadBudget;
use std::path::PathBuf;

/// A deterministic-workload spec: impossible tolerance means it always
/// runs exactly `max_periods` periods (a few hundred ms in debug), long
/// enough that pool overlap is observable even on a one-core host.
fn work_spec(name: &str) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        description: "batch-runner test workload".to_string(),
        grid: GridSpec {
            nx: 8,
            ny: 8,
            nz: 32,
        },
        physics: PhysicsSpec {
            lambda_cells: 8.0,
            lambda_nm: 550.0,
            cfl: 0.95,
        },
        pml: Some(PmlDecl::with_thickness(6)),
        source: Some(SourceDecl::x_polarized(24, 1.0)),
        scene: SceneDecl::vacuum(),
        engine: EngineDecl::NaivePeriodicXY,
        convergence: ConvergenceDecl {
            tol: 1e-30,
            max_periods: 4,
        },
        sweep: None,
        workers: 1,
        outputs: Default::default(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("em_scenarios_batch_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn batch_runs_three_plus_scenarios_concurrently_with_one_artifact_per_job() {
    let specs: Vec<ScenarioSpec> = ["job-a", "job-b", "job-c", "job-d", "job-e", "job-f"]
        .iter()
        .map(|n| work_spec(n))
        .collect();
    let dir = temp_dir("concurrent");
    let report = run_batch(
        &specs,
        &BatchOptions {
            workers: 3,
            out_dir: Some(dir.clone()),
            ..Default::default()
        },
    )
    .unwrap();

    // Bounded pool, and genuinely concurrent: with six multi-hundred-ms
    // jobs and three workers, at least two (in practice all three) are
    // in flight together; the pool cap is never exceeded.
    assert_eq!(report.workers, 3);
    assert!(
        report.max_in_flight <= 3,
        "pool exceeded its bound: {}",
        report.max_in_flight
    );
    assert!(
        report.max_in_flight >= 2,
        "no overlap observed across 6 jobs on 3 workers"
    );

    // Deterministic ordering regardless of completion order.
    let names: Vec<&str> = report
        .outcomes
        .iter()
        .map(|o| o.scenario.as_str())
        .collect();
    assert_eq!(
        names,
        vec!["job-a", "job-b", "job-c", "job-d", "job-e", "job-f"]
    );

    // One JSON artifact per job, named by job order, plus the summary.
    for (i, o) in report.outcomes.iter().enumerate() {
        assert!(o.error.is_none(), "{:?}", o.error);
        assert_eq!(o.periods, 4, "deterministic workload length");
        let artifact = o.artifact.as_ref().expect("artifact path recorded");
        assert!(artifact.is_file(), "{}", artifact.display());
        let body = std::fs::read_to_string(artifact).unwrap();
        assert!(body.contains(&format!("\"job\": {i}")), "{body}");
        assert!(body.contains(&format!("\"scenario\": \"{}\"", o.scenario)));
        assert!(body.contains("\"energy\""));
    }
    assert!(dir.join("batch_summary.json").is_file());
    let csv = std::fs::read_to_string(dir.join("batch_summary.csv")).unwrap();
    assert_eq!(csv.lines().count(), 1 + 6, "header + one row per job");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_batches_produce_identical_artifacts() {
    // Naive engines are deterministic, so two runs of the same batch
    // must produce byte-identical JSON artifacts (modulo wall_secs,
    // which is why wall time lives in its own line).
    let specs = vec![work_spec("repeat")];
    let (d1, d2) = (temp_dir("rep1"), temp_dir("rep2"));
    for dir in [&d1, &d2] {
        run_batch(
            &specs,
            &BatchOptions {
                workers: 1,
                out_dir: Some(dir.clone()),
                ..Default::default()
            },
        )
        .unwrap();
    }
    let strip_wall = |p: PathBuf| -> String {
        std::fs::read_to_string(p)
            .unwrap()
            .lines()
            .filter(|l| !l.contains("wall_secs"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let hash12 = &specs[0].content_hash()[..12];
    let a = strip_wall(d1.join(format!("00_repeat_0550nm_{hash12}.json")));
    let b = strip_wall(d2.join(format!("00_repeat_0550nm_{hash12}.json")));
    assert!(!a.is_empty());
    assert_eq!(a, b, "artifacts must be reproducible");
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d2);
}

#[test]
fn engine_override_applies_to_every_job_and_stays_bit_identical() {
    // The same workload through --engine mwd must produce the same
    // converged state as the naive engine: temporal blocking is
    // bit-identical, so even the energies match exactly.
    let specs = vec![work_spec("override")];
    let naive = run_batch(
        &specs,
        &BatchOptions {
            workers: 1,
            engine_kind: Some("naive".to_string()),
            ..Default::default()
        },
    )
    .unwrap();
    let mwd = run_batch(
        &specs,
        &BatchOptions {
            workers: 1,
            engine_kind: Some("mwd".to_string()),
            threads: Some(2),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(naive.outcomes[0].engine.starts_with("naive"));
    assert!(mwd.outcomes[0].engine.starts_with("mwd"));
    assert_eq!(mwd.outcomes[0].threads, 2);
    assert_eq!(
        naive.outcomes[0].energy.to_bits(),
        mwd.outcomes[0].energy.to_bits(),
        "MWD override must stay bit-identical to naive"
    );
}

#[test]
fn auto_pool_shrinks_for_thread_hungry_spec_engines() {
    // Four jobs whose spec engine wants 6 threads each (2 groups x
    // 1x1x3) on an 8-thread budget: an auto-sized pool must drop to one
    // worker so workers x engine-threads stays within the budget.
    let specs: Vec<ScenarioSpec> = (0..4)
        .map(|i| {
            let mut s = work_spec(&format!("hungry-{i}"));
            s.engine = EngineDecl::Mwd {
                dw: 4,
                bz: 2,
                tg_x: 1,
                tg_z: 1,
                tg_c: 3,
                groups: 2,
            };
            s
        })
        .collect();
    let report = run_batch(
        &specs,
        &BatchOptions {
            budget: ThreadBudget::new(8),
            dry_run: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.workers, 1, "6-thread engines cap an 8-thread pool");

    // An explicitly pinned pool size is honored as is.
    let pinned = run_batch(
        &specs,
        &BatchOptions {
            workers: 2,
            budget: ThreadBudget::new(8),
            dry_run: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(pinned.workers, 2);
}

#[test]
fn single_worker_run_gets_the_whole_budget_per_job() {
    // `mwd run` pins workers = 1; each sequential job's engine share is
    // then the full budget, not total/jobs.
    let specs: Vec<ScenarioSpec> = (0..3).map(|i| work_spec(&format!("seq-{i}"))).collect();
    let report = run_batch(
        &specs,
        &BatchOptions {
            workers: 1,
            budget: ThreadBudget::new(8),
            dry_run: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.workers, 1);
    assert_eq!(report.threads_per_job, 8);
}

#[test]
fn thread_budget_is_shared_between_workers_and_jobs() {
    let specs: Vec<ScenarioSpec> = (0..4).map(|i| work_spec(&format!("budget-{i}"))).collect();
    let report = run_batch(
        &specs,
        &BatchOptions {
            budget: ThreadBudget::new(8),
            dry_run: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.workers, 4);
    assert_eq!(report.threads_per_job, 2);
    assert!(report.workers * report.threads_per_job <= 8);
}

/// The batch invariant the `ThreadBudget` exists for: however jobs,
/// sweeps and tuned thread groups combine, an auto-sized pool keeps
/// `concurrent workers x widest resolved engine` within the budget —
/// including when the configurations only materialize at run time via
/// `engine = "auto"` tuning.
#[test]
fn workers_times_widest_resolved_tg_never_exceeds_the_budget() {
    for (budget, jobs) in [(1usize, 3usize), (4, 5), (8, 2), (8, 13)] {
        let specs: Vec<ScenarioSpec> = (0..jobs)
            .map(|i| {
                let mut s = work_spec(&format!("auto-{i}"));
                s.engine = EngineDecl::Auto { threads: 0 };
                s
            })
            .collect();
        let report = run_batch(
            &specs,
            &BatchOptions {
                budget: ThreadBudget::new(budget),
                dry_run: true,
                ..Default::default()
            },
        )
        .unwrap();
        let widest = report
            .outcomes
            .iter()
            .map(|o| o.threads)
            .max()
            .expect("outcomes exist");
        assert!(
            report.workers * widest <= budget,
            "budget {budget}, {jobs} jobs: {} workers x {widest} threads",
            report.workers
        );
        // Every auto job really was resolved to a concrete MWD engine
        // occupying its full budget slice.
        for o in &report.outcomes {
            assert!(o.engine.starts_with("mwd("), "unresolved: {}", o.engine);
            assert_eq!(o.threads, report.threads_per_job);
            assert!(o.tuned.is_some());
        }
    }
}

/// Result ordering must not depend on completion order. The first job
/// is adversarially slow (several periods on a taller grid) while the
/// rest are quick, so on a multi-worker pool the later jobs all finish
/// first — and the report must still come back in submission order.
#[test]
fn ordering_is_deterministic_under_adversarially_slow_jobs() {
    let mut specs = vec![work_spec("slowest")];
    specs[0].grid.nz = 64;
    specs[0].convergence.max_periods = 6;
    for i in 0..5 {
        let mut s = work_spec(&format!("quick-{i}"));
        s.grid = em_scenarios::GridSpec {
            nx: 4,
            ny: 4,
            nz: 24,
        };
        s.pml = Some(PmlDecl::with_thickness(4));
        s.source = Some(SourceDecl::x_polarized(18, 1.0));
        s.convergence.max_periods = 1;
        specs.push(s);
    }
    let report = run_batch(
        &specs,
        &BatchOptions {
            workers: 3,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(report.max_in_flight >= 2, "overlap must actually happen");
    let names: Vec<&str> = report
        .outcomes
        .iter()
        .map(|o| o.scenario.as_str())
        .collect();
    assert_eq!(
        names,
        vec!["slowest", "quick-0", "quick-1", "quick-2", "quick-3", "quick-4"]
    );
    for (i, o) in report.outcomes.iter().enumerate() {
        assert_eq!(o.job, i);
        assert!(o.error.is_none(), "{:?}", o.error);
    }
    // The slow job really was the long pole: it ran at least as long as
    // any quick one (sanity check that the adversarial setup holds).
    let slow = report.outcomes[0].wall_secs;
    assert!(
        report.outcomes[1..].iter().all(|o| o.wall_secs <= slow),
        "slow job was not the long pole"
    );
}

#[test]
fn sweep_jobs_order_is_deterministic_within_a_scenario() {
    let mut spec = work_spec("sweep");
    spec.sweep = Some(em_scenarios::SweepDecl {
        lambdas: vec![
            em_scenarios::SweepPoint {
                nm: 450.0,
                cells: 8.0,
            },
            em_scenarios::SweepPoint {
                nm: 650.0,
                cells: 12.0,
            },
        ],
    });
    let report = run_batch(
        &[spec],
        &BatchOptions {
            workers: 2,
            dry_run: true,
            ..Default::default()
        },
    )
    .unwrap();
    let nm: Vec<f64> = report.outcomes.iter().map(|o| o.lambda_nm).collect();
    assert_eq!(nm, vec![450.0, 650.0]);
    assert_eq!(report.outcomes[0].sweep_index, 0);
    assert_eq!(report.outcomes[1].sweep_index, 1);
}
