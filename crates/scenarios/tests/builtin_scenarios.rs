//! The built-in catalog honors the repo's central contract: on every
//! scenario's real physics (materials, PML, sources, back iteration),
//! the MWD temporal-blocking engine reproduces the naive sweep
//! bit-for-bit.

use em_scenarios::library;
use em_solver::Engine;
use mwd_core::{MwdConfig, TgShape};

#[test]
fn every_builtin_mwd_run_is_bit_identical_to_the_naive_sweep() {
    let mwd_cfg = MwdConfig {
        dw: 4,
        bz: 2,
        tg: TgShape { x: 1, z: 1, c: 3 },
        groups: 2,
    };
    for spec in library::builtins() {
        mwd_cfg
            .validate(spec.dims())
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let jobs = spec.jobs();
        let job = &jobs[0];
        let mut naive = spec.build_solver(job).expect("solver builds");
        let mut mwd = spec.build_solver(job).expect("solver builds");
        // Seed nontrivial fields so six steps exercise real data flow.
        naive.state.fields.fill_deterministic(17);
        mwd.state.fields.fill_deterministic(17);

        naive.step_n(&Engine::Naive, 6).unwrap();
        mwd.step_n(&Engine::Mwd(mwd_cfg), 6).unwrap();
        assert!(
            naive.fields().bit_eq(mwd.fields()),
            "{}: MWD diverged from naive bits",
            spec.name
        );
    }
}

#[test]
fn builtin_solvers_expose_the_expected_physics() {
    // The solar cell and the nanowire contain silver, so the Eq. 5 back
    // iteration must be active; the calibration slab must not need it.
    let job = |spec: &em_scenarios::ScenarioSpec| spec.jobs().remove(0);

    let cell = library::solar_cell();
    let s = cell.build_solver(&job(&cell)).unwrap();
    assert!(s.back_iteration_cells > 0, "solar cell needs Eq. 5");

    let wire = library::silver_nanowire();
    let s = wire.build_solver(&job(&wire)).unwrap();
    assert!(s.back_iteration_cells > 0, "nanowire needs Eq. 5");

    let slab = library::vacuum_slab();
    let s = slab.build_solver(&job(&slab)).unwrap();
    assert_eq!(s.back_iteration_cells, 0, "vacuum has no negative eps");
}

#[test]
fn builtin_engines_run_on_their_own_specs() {
    // Each spec's declared engine must actually step its own grid
    // (one step is enough to catch validation mismatches).
    for spec in library::builtins() {
        let jobs = spec.jobs();
        let job = &jobs[0];
        let engine = spec
            .engine()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let mut solver = spec.build_solver(job).expect("solver builds");
        solver
            .step_n(&engine, 2)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert!(solver.state.fields.energy().is_finite());
    }
}
