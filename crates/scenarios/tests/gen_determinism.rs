//! Determinism guarantees of the scenario generators.
//!
//! The generators promise that `(family, seed, params)` fully determines
//! the emitted spec: two independently constructed generator instances
//! must produce byte-identical TOML on any host, the TOML must roundtrip
//! through the codec unchanged, and the content hash (the dedupe key the
//! batch runner and service both derive from the canonical TOML) must be
//! a pure function of those bytes.

use em_scenarios::gen::{generate, Family, GenParams};
use em_scenarios::spec::ScenarioSpec;
use proptest::prelude::*;

/// Rebuild params from scratch so the two generate() calls share no
/// state whatsoever — not even a cloned struct.
fn fresh_params(tiny: bool) -> GenParams {
    if tiny {
        GenParams::tiny()
    } else {
        GenParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same (family, seed, params) → byte-identical TOML from two
    /// independent generator instances, a clean codec roundtrip, and
    /// matching content hashes.
    #[test]
    fn same_seed_is_byte_identical_and_roundtrips(
        family_pick in 0usize..4,
        seed in 0u64..1_000_000,
        tiny_pick in 0usize..2,
    ) {
        let family = Family::ALL[family_pick % Family::ALL.len()];
        let tiny = tiny_pick == 0;

        let a = generate(family, seed, &fresh_params(tiny)).map_err(TestCaseError::fail)?;
        let b = generate(family, seed, &fresh_params(tiny)).map_err(TestCaseError::fail)?;

        let toml_a = a.to_toml_string();
        let toml_b = b.to_toml_string();
        prop_assert_eq!(&toml_a, &toml_b, "two instances diverged for ({}, seed {})",
            family.name(), seed);
        prop_assert_eq!(a.content_hash(), b.content_hash());

        // The emitted TOML is a fixed point of the codec: parse it back
        // and re-serialize without losing a byte.
        let back = ScenarioSpec::from_toml_str(&toml_a).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &a, "codec roundtrip changed the spec:\n{}", toml_a);
        prop_assert_eq!(back.to_toml_string(), toml_a);
        prop_assert_eq!(back.content_hash(), a.content_hash());
    }

    /// The draw stream is consumed identically regardless of what was
    /// generated before: interleaving other families/seeds between two
    /// calls cannot perturb the output (no hidden global state).
    #[test]
    fn generation_order_does_not_matter(
        family_pick in 0usize..4,
        seed in 0u64..1_000_000,
        noise_seed in 0u64..1_000_000,
    ) {
        let family = Family::ALL[family_pick % Family::ALL.len()];
        let params = GenParams::tiny();

        let clean = generate(family, seed, &params).map_err(TestCaseError::fail)?;
        for other in Family::ALL {
            let _ = generate(other, noise_seed, &params);
        }
        let after_noise = generate(family, seed, &params).map_err(TestCaseError::fail)?;
        prop_assert_eq!(clean.to_toml_string(), after_noise.to_toml_string());
    }
}

/// Distinct seeds produce distinct specs (the name embeds the seed, so
/// hashes must never collide across seeds of one family).
#[test]
fn distinct_seeds_have_distinct_hashes() {
    let params = GenParams::tiny();
    for family in Family::ALL {
        let mut hashes = std::collections::HashSet::new();
        for seed in 0..32u64 {
            let spec = generate(family, seed, &params).unwrap();
            assert!(
                hashes.insert(spec.content_hash()),
                "hash collision for ({}, seed {seed})",
                family.name()
            );
        }
    }
}

/// The content hash is exactly the shared FNV-1a-128 of the canonical
/// TOML — the same key the service store would compute for the spec
/// body, so generated specs dedupe across subsystems.
#[test]
fn content_hash_matches_shared_fnv_of_canonical_toml() {
    let spec = generate(Family::Multilayer, 7, &GenParams::tiny()).unwrap();
    let expect = em_json::hash::content_hash(&[&spec.to_toml_string()]);
    assert_eq!(spec.content_hash(), expect);
    assert!(em_json::hash::is_key(&spec.content_hash()));
}

/// Every (family, small seed) pair generates a spec that passes full
/// validation — the generator never emits an invalid spec.
#[test]
fn generated_specs_always_validate() {
    for family in Family::ALL {
        for seed in 0..16u64 {
            let spec = generate(family, seed, &GenParams::tiny()).unwrap();
            spec.validate()
                .unwrap_or_else(|e| panic!("({}, seed {seed}): {e}", family.name()));
            let spec = generate(family, seed, &GenParams::default()).unwrap();
            spec.validate()
                .unwrap_or_else(|e| panic!("({}, seed {seed}, full): {e}", family.name()));
        }
    }
}
