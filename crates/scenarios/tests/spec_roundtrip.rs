//! Property and rejection tests for the scenario spec format.
//!
//! The property test generates randomized-but-sane specs, serializes
//! them to TOML and demands the reparse is exactly equal. The rejection
//! tests feed malformed specs (bad extents, unknown materials,
//! overlapping geometry, out-of-range sources, invalid engines) through
//! validation and assert the error names the offending section.

use em_scenarios::spec::{
    ConvergenceDecl, EngineDecl, GridSpec, LayerDecl, OutputsDecl, PhysicsSpec, PmlDecl,
    ScenarioSpec, SceneDecl, SlabDecl, SourceDecl, SphereDecl, SweepDecl, SweepPoint, TextureDecl,
};
use proptest::prelude::*;

/// A randomized, always-valid spec assembled from sampled parts.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    name_pick: usize,
    nx: usize,
    nz_half: usize,
    lambda_cells: f64,
    lambda_nm: f64,
    pml_on: usize,
    source_frac: f64,
    engine_pick: usize,
    layers_n: usize,
    spheres_n: usize,
    texture_on: usize,
    sweep_n: usize,
    slabs_n: usize,
    seed: u64,
) -> ScenarioSpec {
    let names = ["alpha", "beta-2", "run_3", "x"];
    let nz = 2 * nz_half;
    let materials = vec![
        "vacuum".to_string(),
        "glass".to_string(),
        "a-Si:H".to_string(),
        "Ag".to_string(),
    ];
    // Disjoint layers stacked bottom-up inside [0, nz/2).
    let span = (nz as f64 / 2.0) / (layers_n.max(1) as f64);
    let layers: Vec<LayerDecl> = (0..layers_n)
        .map(|i| {
            let mat = ["glass", "a-Si:H", "Ag"][i % 3];
            let mut l = LayerDecl::flat(mat, i as f64 * span, (i as f64 + 0.7) * span);
            if texture_on == 1 && i == 0 {
                l.top_texture = Some(TextureDecl {
                    amplitude: 0.5,
                    period: 4.0,
                    seed,
                });
            }
            l
        })
        .collect();
    let spheres: Vec<SphereDecl> = (0..spheres_n)
        .map(|i| SphereDecl {
            material: "Ag".to_string(),
            center: [
                (i as f64 * 1.3) % nx as f64,
                (i as f64 * 2.1) % nx as f64,
                (i as f64 * 3.7) % nz as f64,
            ],
            radius: 1.5,
        })
        .collect();
    let engine = match engine_pick % 6 {
        0 => EngineDecl::Naive,
        5 => EngineDecl::Auto { threads: 2 },
        1 => EngineDecl::NaivePeriodicXY,
        2 => EngineDecl::Spatial {
            by: 4,
            bz: 4,
            threads: 2,
        },
        3 => EngineDecl::Mwd {
            dw: 4,
            bz: 2,
            tg_x: 1,
            tg_z: 1,
            tg_c: 3,
            groups: 2,
        },
        _ => EngineDecl::MwdPeriodicX {
            dw: 4,
            bz: 2,
            tg_x: 1,
            tg_z: 2,
            tg_c: 1,
            groups: 1,
        },
    };
    ScenarioSpec {
        name: names[name_pick % names.len()].to_string(),
        description: "randomized property-test spec \"quoted\"".to_string(),
        grid: GridSpec { nx, ny: nx, nz },
        physics: PhysicsSpec {
            lambda_cells,
            lambda_nm,
            cfl: 0.95,
        },
        pml: (pml_on == 1).then(|| PmlDecl::with_thickness(nz / 4)),
        source: Some(SourceDecl::x_polarized(
            ((nz as f64 * source_frac) as usize).min(nz - 1),
            1.0,
        )),
        scene: SceneDecl::Explicit {
            materials,
            background: "vacuum".to_string(),
            layers,
            spheres,
        },
        engine,
        convergence: ConvergenceDecl {
            tol: 1e-3,
            max_periods: 10,
        },
        sweep: (sweep_n > 0).then(|| SweepDecl {
            lambdas: (0..sweep_n)
                .map(|i| SweepPoint {
                    nm: 400.0 + 50.0 * i as f64,
                    cells: 8.0 + i as f64,
                })
                .collect(),
        }),
        workers: 1,
        outputs: OutputsDecl {
            intensity_profile: slabs_n.is_multiple_of(2),
            absorption: (0..slabs_n)
                .map(|i| SlabDecl {
                    name: format!("slab{i}"),
                    z_lo: i,
                    z_hi: nz - i,
                })
                .collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Serialize -> parse is the identity on the spec, and sampled
    /// specs validate (so the generator stays honest).
    #[test]
    fn spec_roundtrips_through_toml(
        name_pick in 0usize..4,
        nx in 4usize..12,
        nz_half in 12usize..24,
        lambda_cells in 4.0f64..16.0,
        lambda_nm in 380.0f64..800.0,
        pml_on in 0usize..2,
        source_frac in 0.5f64..0.95,
        engine_pick in 0usize..6,
        layers_n in 0usize..4,
        spheres_n in 0usize..3,
        texture_on in 0usize..2,
        sweep_n in 0usize..4,
        slabs_n in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let spec = build_spec(
            name_pick, nx, nz_half, lambda_cells, lambda_nm, pml_on, source_frac,
            engine_pick, layers_n, spheres_n, texture_on, sweep_n, slabs_n, seed,
        );
        spec.validate().map_err(TestCaseError::fail)?;
        let text = spec.to_toml_string();
        let back = ScenarioSpec::from_toml_str(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &spec, "round trip changed the spec:\n{}", text);
        // Round-tripping the reparse is also the identity (stability).
        prop_assert_eq!(back.to_toml_string(), text);
    }
}

// ----------------------------------------------------------- rejections

fn valid_base() -> ScenarioSpec {
    build_spec(0, 8, 16, 10.0, 550.0, 1, 0.8, 1, 2, 1, 1, 0, 1, 7)
}

#[test]
fn base_spec_is_valid() {
    valid_base().validate().unwrap();
}

#[test]
fn zero_extents_rejected() {
    let mut s = valid_base();
    s.grid.ny = 0;
    let e = s.validate().unwrap_err();
    assert!(e.contains("[grid]") && e.contains("positive"), "{e}");
}

#[test]
fn unknown_material_rejected() {
    let mut s = valid_base();
    if let SceneDecl::Explicit { materials, .. } = &mut s.scene {
        materials.push("unobtainium".to_string());
    }
    let e = s.validate().unwrap_err();
    assert!(e.contains("unknown material `unobtainium`"), "{e}");
    assert!(e.contains("vacuum"), "should list known materials: {e}");
}

#[test]
fn layer_material_missing_from_list_rejected() {
    let mut s = valid_base();
    if let SceneDecl::Explicit { layers, .. } = &mut s.scene {
        layers[0].material = "TCO".to_string(); // known, but not listed
    }
    let e = s.validate().unwrap_err();
    assert!(e.contains("not in the materials list"), "{e}");
}

#[test]
fn overlapping_layers_rejected() {
    let mut s = valid_base();
    if let SceneDecl::Explicit { layers, .. } = &mut s.scene {
        layers.clear();
        layers.push(LayerDecl::flat("glass", 0.0, 10.0));
        layers.push(LayerDecl::flat("Ag", 8.0, 14.0));
    }
    let e = s.validate().unwrap_err();
    assert!(e.contains("overlap"), "{e}");
}

#[test]
fn inverted_layer_rejected() {
    let mut s = valid_base();
    if let SceneDecl::Explicit { layers, .. } = &mut s.scene {
        layers[0].z_lo = 9.0;
        layers[0].z_hi = 3.0;
    }
    let e = s.validate().unwrap_err();
    assert!(e.contains("z_lo < z_hi"), "{e}");
}

#[test]
fn out_of_grid_sphere_rejected() {
    let mut s = valid_base();
    if let SceneDecl::Explicit { spheres, .. } = &mut s.scene {
        spheres[0].center = [4.0, 4.0, 1000.0];
    }
    let e = s.validate().unwrap_err();
    assert!(e.contains("sphere") && e.contains("outside"), "{e}");
}

#[test]
fn source_outside_grid_rejected() {
    let mut s = valid_base();
    s.source = Some(SourceDecl::x_polarized(32, 1.0)); // nz = 32
    let e = s.validate().unwrap_err();
    assert!(
        e.contains("[source]") && e.contains("outside the grid"),
        "{e}"
    );
}

#[test]
fn oversized_pml_rejected() {
    let mut s = valid_base();
    s.pml = Some(PmlDecl::with_thickness(16)); // 2*16 >= nz = 32
    let e = s.validate().unwrap_err();
    assert!(e.contains("[pml]"), "{e}");
}

#[test]
fn unresolvable_wavelength_rejected() {
    let mut s = valid_base();
    s.physics.lambda_cells = 2.0;
    let e = s.validate().unwrap_err();
    assert!(e.contains("lambda_cells"), "{e}");
}

#[test]
fn invalid_engine_shape_rejected() {
    let mut s = valid_base();
    s.engine = EngineDecl::Mwd {
        dw: 4,
        bz: 2,
        tg_x: 1,
        tg_z: 1,
        tg_c: 4, // component parallelism must be 1, 2, 3 or 6
        groups: 1,
    };
    let e = s.validate().unwrap_err();
    assert!(e.contains("[engine]"), "{e}");
}

#[test]
fn empty_sweep_rejected() {
    let mut s = valid_base();
    s.sweep = Some(SweepDecl { lambdas: vec![] });
    let e = s.validate().unwrap_err();
    assert!(e.contains("[sweep]"), "{e}");
}

#[test]
fn bad_absorption_slab_rejected() {
    let mut s = valid_base();
    s.outputs.absorption.push(SlabDecl {
        name: "broken".to_string(),
        z_lo: 20,
        z_hi: 10,
    });
    let e = s.validate().unwrap_err();
    assert!(e.contains("absorption slab"), "{e}");
}

#[test]
fn unknown_preset_rejected() {
    let mut s = valid_base();
    s.scene = SceneDecl::Preset {
        preset: "klein-bottle".to_string(),
    };
    let e = s.validate().unwrap_err();
    assert!(e.contains("unknown preset `klein-bottle`"), "{e}");
}

#[test]
fn scenario_name_with_path_separators_rejected() {
    let mut s = valid_base();
    s.name = "../escape".to_string();
    let e = s.validate().unwrap_err();
    assert!(e.contains("letters, digits"), "{e}");
}

// ------------------------------------------------- parse-level errors

#[test]
fn unknown_key_in_section_is_an_error() {
    let mut text = em_scenarios::library::vacuum_slab().to_toml_string();
    text.push_str("\n[grid2]\nnx = 3\n");
    let e = ScenarioSpec::from_toml_str(&text).unwrap_err();
    assert!(e.contains("unknown key `grid2`"), "{e}");
}

#[test]
fn typo_inside_section_is_an_error() {
    let text = em_scenarios::library::vacuum_slab()
        .to_toml_string()
        .replace("lambda_cells", "lambda_cels");
    let e = ScenarioSpec::from_toml_str(&text).unwrap_err();
    assert!(e.contains("lambda_cels"), "{e}");
}

#[test]
fn wrong_type_is_an_error() {
    let text = em_scenarios::library::vacuum_slab()
        .to_toml_string()
        .replace("nx = 8", "nx = \"eight\"");
    let e = ScenarioSpec::from_toml_str(&text).unwrap_err();
    assert!(e.contains("`nx` must be an integer"), "{e}");
}

#[test]
fn bad_polarization_is_an_error() {
    let text = em_scenarios::library::vacuum_slab()
        .to_toml_string()
        .replace("polarization = \"x\"", "polarization = \"z\"");
    let e = ScenarioSpec::from_toml_str(&text).unwrap_err();
    assert!(e.contains("polarization"), "{e}");
}
