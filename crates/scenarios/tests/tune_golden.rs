//! The `batch --tune` acceptance golden: over the builtin catalog,
//! every job's configuration resolves from the tuning cache (second run
//! is pure hits with zero native probes), and the tuned results are
//! bit-identical to running the same resolved configurations pinned in
//! the specs — tuning changes *which* config runs, never *what* it
//! computes.

use em_scenarios::runner::{run_batch, BatchOptions, TunePlan};
use em_scenarios::spec::EngineDecl;
use em_scenarios::{library, ScenarioSpec};
use mwd_core::{MwdConfig, ThreadBudget};
use std::path::PathBuf;

/// The builtin catalog with the workload cut to one deterministic
/// period per job (tol below machine precision never converges early)
/// and sweeps collapsed to their head wavelength — a sweep's jobs share
/// one tuning key anyway (see `sweep_jobs_of_one_spec_share_a_single_
/// cache_entry`), and one period per scenario keeps the full-catalog
/// x3-runs golden affordable in debug builds.
fn short_catalog() -> Vec<ScenarioSpec> {
    let mut specs = library::builtins();
    for s in &mut specs {
        s.convergence.tol = 1e-300;
        s.convergence.max_periods = 1;
        if let Some(sweep) = &mut s.sweep {
            sweep.lambdas.truncate(1);
        }
    }
    specs
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("em_tune_golden_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    dir
}

#[test]
fn batch_tune_on_the_catalog_is_cached_and_bit_identical_to_pinned_configs() {
    let specs = short_catalog();
    let dir = temp_dir("cache");
    let cache_path = dir.join("tune_cache.json");
    let budget = ThreadBudget::new(2);
    let opts = |tune: bool| BatchOptions {
        // `--engine auto` + `--tune`: every job (whatever engine its
        // spec declares) resolves its MwdConfig from the cache under
        // its thread-budget slice.
        engine_kind: tune.then(|| "auto".to_string()),
        tune: tune.then(|| TunePlan {
            cache_path: Some(cache_path.clone()),
            force: false,
            refine_top: 0,
        }),
        budget,
        ..Default::default()
    };

    // First tuned run: the cache starts cold, so at least the first job
    // of each distinct (dims, threads) key misses; repeats hit.
    let first = run_batch(&specs, &opts(true)).unwrap();
    assert!(first.outcomes.iter().all(|o| o.error.is_none()));
    assert!(
        first.outcomes.iter().all(|o| o.tuned.is_some()),
        "every job must resolve from the cache"
    );
    let (_, misses, probes) = first.tune_stats();
    assert!(misses > 0, "cold cache must miss");
    assert_eq!(probes, 0, "refine_top = 0 never probes natively");
    assert!(cache_path.is_file(), "cache persisted");

    // Second tuned run: pure cache hits, zero native probes, and
    // bit-identical physics.
    let second = run_batch(&specs, &opts(true)).unwrap();
    let (hits, misses, probes) = second.tune_stats();
    assert_eq!(misses, 0, "second run must be all hits");
    assert_eq!(probes, 0, "second run must spend zero native probes");
    assert_eq!(hits, second.outcomes.len());
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.engine, b.engine, "cached config must be stable");
        assert_eq!(
            a.energy.to_bits(),
            b.energy.to_bits(),
            "job {}: tuned reruns must be bit-identical",
            a.scenario
        );
        assert_eq!(a.rel_change.to_bits(), b.rel_change.to_bits());
        assert_eq!(a.steps, b.steps);
    }

    // Pin each spec's engine to exactly the configuration the cache
    // resolved and run without tuning: results must stay bit-identical.
    let mut pinned = specs.clone();
    for (spec, outcome) in pinned.iter_mut().zip(&second.outcomes) {
        // One job per spec here would be wrong: sweeps expand to
        // several jobs per spec, but all of a spec's jobs share dims
        // and threads, hence the same cached config — so indexing by
        // the spec's first job is sound. Verify that invariant first.
        let t = outcome.tuned.as_ref().unwrap();
        let cfg = MwdConfig::from_compact(&t.config).unwrap();
        spec.engine = EngineDecl::Mwd {
            dw: cfg.dw,
            bz: cfg.bz,
            tg_x: cfg.tg.x,
            tg_z: cfg.tg.z,
            tg_c: cfg.tg.c,
            groups: cfg.groups,
        };
    }
    // Jobs expand per sweep point: align spec-pinned configs with the
    // flat job list by scenario name.
    let by_name = |name: &str, outcomes: &[em_scenarios::JobOutcome]| -> Vec<(u64, usize)> {
        outcomes
            .iter()
            .filter(|o| o.scenario == name)
            .map(|o| (o.energy.to_bits(), o.steps))
            .collect()
    };
    let third = run_batch(
        &pinned,
        &BatchOptions {
            budget,
            threads: Some(second.threads_per_job),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(third.outcomes.iter().all(|o| o.error.is_none()));
    assert!(
        third.outcomes.iter().all(|o| o.tuned.is_none()),
        "pinned run must not consult the tuner"
    );
    for spec in &pinned {
        assert_eq!(
            by_name(&spec.name, &second.outcomes),
            by_name(&spec.name, &third.outcomes),
            "scenario {}: tuned vs pinned-config results must be bit-identical",
            spec.name
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_jobs_of_one_spec_share_a_single_cache_entry() {
    // Misses are paid per key, not per job: a 3-point sweep resolves
    // once and hits twice even on a cold in-memory cache.
    let mut spec = library::solar_cell();
    spec.convergence.max_periods = 1;
    spec.convergence.tol = 1e-300;
    spec.engine = EngineDecl::Auto { threads: 0 };
    let report = run_batch(
        &[spec],
        &BatchOptions {
            budget: ThreadBudget::new(2),
            dry_run: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.outcomes.len(), 3, "three sweep points");
    let (hits, misses, _) = report.tune_stats();
    assert_eq!(misses, 1, "one search per distinct key");
    assert_eq!(hits, 2, "remaining sweep jobs reuse it");
    let configs: Vec<&str> = report
        .outcomes
        .iter()
        .map(|o| o.tuned.as_ref().unwrap().config.as_str())
        .collect();
    assert!(configs.windows(2).all(|w| w[0] == w[1]));
}
