//! Rejection coverage for the generative subsystem: bad inputs are
//! *errors with a message naming the offence*, never panics.
//!
//! Three layers are exercised: degenerate `GenParams` ranges (refused
//! before any drawing happens), hand-corrupted generated specs fed back
//! through full validation (zero-thickness layers and friends), and
//! malformed TOML (errors carry the 1-based line number).

use em_scenarios::gen::{generate, Family, GenParams, LAMBDA_BAND_NM};
use em_scenarios::spec::{ScenarioSpec, SceneDecl};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inverted integer ranges are refused with a "degenerate" message
    /// naming the field, for every integer-range field.
    #[test]
    fn inverted_ranges_are_degenerate_errors(
        field_pick in 0usize..5,
        lo in 2usize..40,
        gap in 1usize..10,
    ) {
        let hi = lo - 1 - (gap - 1).min(lo - 1); // strictly below lo
        let base = GenParams::default();
        let (p, name) = match field_pick {
            0 => (GenParams { nx: (lo, hi), ..base }, "nx"),
            1 => (GenParams { ny: (lo, hi), ..base }, "ny"),
            2 => (GenParams { nz: (lo.max(20), hi), ..base }, "nz"),
            3 => (GenParams { layers: (lo, hi), ..base }, "layers"),
            _ => (GenParams { spheres: (lo, hi), ..base }, "spheres"),
        };
        let e = p.validate().expect_err("inverted range must be rejected");
        prop_assert!(e.contains("degenerate") && e.contains(name),
            "error should name `{}` as degenerate: {}", name, e);
        // generate() surfaces the same error instead of panicking.
        let g = generate(Family::Multilayer, 1, &p).expect_err("generate must refuse");
        prop_assert!(g.contains("degenerate"), "{}", g);
    }

    /// Wavelength ranges outside the material-fit band are refused with
    /// a message naming the calibrated band.
    #[test]
    fn out_of_band_wavelengths_are_rejected(
        below in 0usize..2,
        offset in 1.0f64..200.0,
    ) {
        let (band_lo, band_hi) = LAMBDA_BAND_NM;
        let mut lambda_nm = if below == 1 {
            (
                band_lo - offset,
                band_hi.min(band_lo - offset + 50.0).max(band_lo - offset),
            )
        } else {
            (band_hi + offset - 1.0, band_hi + offset)
        };
        // Keep the range itself well-formed so only the band check fires.
        if lambda_nm.0 > lambda_nm.1 {
            lambda_nm = (lambda_nm.1, lambda_nm.0);
        }
        let p = GenParams {
            lambda_nm,
            ..GenParams::default()
        };
        let e = p.validate().expect_err("out-of-band range must be rejected");
        prop_assert!(e.contains("calibrated band"), "{}", e);
    }

    /// Non-finite wavelength endpoints never panic the validator.
    #[test]
    fn non_finite_ranges_are_errors(pick in 0usize..3) {
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][pick];
        let p = GenParams {
            lambda_nm: (bad, 700.0),
            ..GenParams::default()
        };
        let e = p.validate().expect_err("non-finite endpoint must be rejected");
        prop_assert!(e.contains("lambda_nm"), "{}", e);
    }

    /// Zero- and negative-thickness layers injected into an otherwise
    /// valid generated spec fail validation with the layer index, and
    /// validation never panics on them.
    #[test]
    fn zero_thickness_layers_are_rejected(
        seed in 0u64..5_000,
        z in 1.0f64..10.0,
    ) {
        let mut spec = generate(Family::Multilayer, seed, &GenParams::tiny())
            .map_err(TestCaseError::fail)?;
        let SceneDecl::Explicit { layers, .. } = &mut spec.scene else {
            return Err(TestCaseError::fail("multilayer spec should be explicit"));
        };
        prop_assert!(!layers.is_empty(), "multilayer family always emits layers");
        layers[0].z_lo = z;
        layers[0].z_hi = z; // zero thickness
        let e = spec.validate().expect_err("zero-thickness layer must be rejected");
        prop_assert!(e.contains("[scene] layer #0") && e.contains("z_lo < z_hi"), "{}", e);
    }
}

#[test]
fn resolution_floor_is_enforced() {
    let p = GenParams {
        lambda_cells: (2.0, 14.0),
        ..GenParams::default()
    };
    let e = p.validate().unwrap_err();
    assert!(e.contains("below the resolvable minimum"), "{e}");
}

#[test]
fn shallow_grids_are_rejected() {
    let p = GenParams {
        nz: (12, 48),
        ..GenParams::default()
    };
    let e = p.validate().unwrap_err();
    assert!(e.contains("at least 20 cells"), "{e}");
}

#[test]
fn zero_period_cap_is_rejected() {
    let p = GenParams {
        max_periods: 0,
        ..GenParams::default()
    };
    assert!(p.validate().is_err());
}

/// Malformed TOML reports the 1-based line of the offence rather than
/// panicking — the contract the fuzz harness repro lines rely on.
#[test]
fn malformed_toml_reports_line_numbers() {
    let good = generate(Family::Multilayer, 3, &GenParams::tiny())
        .unwrap()
        .to_toml_string();

    // Break one line in the middle of the document: an unclosed table
    // header is a syntax error at exactly that line.
    let lines: Vec<&str> = good.lines().collect();
    let target = lines
        .iter()
        .position(|l| l.trim_start().starts_with('['))
        .expect("generated TOML has a table header");
    let mut broken: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    broken[target] = broken[target].trim_end_matches(']').to_string();
    let e = ScenarioSpec::from_toml_str(&broken.join("\n")).unwrap_err();
    assert!(
        e.contains(&format!("line {}", target + 1)),
        "error should carry line {}: {e}",
        target + 1
    );

    // A bare value without `=` is also a per-line error.
    let e = ScenarioSpec::from_toml_str("name = \"x\"\nwhat even is this\n").unwrap_err();
    assert!(e.contains("line 2"), "{e}");
}
