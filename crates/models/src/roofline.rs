//! Bottleneck ("roofline", Hockney-style, paper ref. [26]) performance
//! model: `P = min(P_core(t), b_S / B_C)`.

use crate::machine::MachineSpec;

/// Eq. 10 — memory-bandwidth performance bound in MLUP/s for a given code
/// balance (bytes/LUP).
pub fn mem_bound_mlups(machine: &MachineSpec, code_balance: f64) -> f64 {
    machine.mem_bw / code_balance / 1e6
}

/// Combined estimate for an engine whose measured/modelled code balance at
/// `threads` threads is `code_balance`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfEstimate {
    pub mlups: f64,
    /// True when the memory interface, not the cores, is the bottleneck.
    pub memory_bound: bool,
    /// Implied memory bandwidth draw, bytes/s.
    pub mem_bw_used: f64,
}

pub fn perf_mlups(machine: &MachineSpec, threads: usize, code_balance: f64) -> PerfEstimate {
    let core = machine.core_bound(threads) / 1e6;
    let mem = mem_bound_mlups(machine, code_balance);
    let mlups = core.min(mem);
    PerfEstimate {
        mlups,
        memory_bound: mem <= core,
        mem_bw_used: mlups * 1e6 * code_balance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HSW: MachineSpec = MachineSpec::HASWELL_E5_2699_V3;

    #[test]
    fn eq10_spatial_blocking_prediction() {
        // "P_mem = 50 GB/s / 1216 bytes/LUP = 41 MLUP/s" — and the paper
        // reports the measurement agrees.
        let p = mem_bound_mlups(&HSW, crate::balance::code_balance_spatial());
        assert!((p - 41.0).abs() < 0.5, "got {p}");
    }

    #[test]
    fn spatial_blocking_saturates_by_six_cores() {
        // Fig. 6a: the spatially blocked code saturates the memory
        // interface with about six cores.
        let bc = crate::balance::code_balance_spatial();
        let at5 = perf_mlups(&HSW, 5, bc);
        let at6 = perf_mlups(&HSW, 6, bc);
        assert!(!at5.memory_bound || at5.mlups > 35.0);
        assert!(at6.memory_bound, "6 threads must hit the bandwidth wall");
        assert!((at6.mlups - 41.0).abs() < 1.0);
    }

    #[test]
    fn mwd_stays_decoupled_on_the_full_chip() {
        // With diamond B_C at Dw=16 (~105 B/LUP), 18 cores stay core-bound
        // and land near 130 MLUP/s, drawing well under 50 GB/s — the
        // "38%-80% memory bandwidth saving".
        let bc = crate::balance::code_balance_diamond(16);
        let est = perf_mlups(&HSW, 18, bc);
        assert!(!est.memory_bound, "MWD must be decoupled");
        assert!((est.mlups - 130.0).abs() < 6.0, "got {}", est.mlups);
        let bw_fraction = est.mem_bw_used / HSW.mem_bw;
        assert!(
            bw_fraction < 0.62,
            "bandwidth saving >= 38%, used {bw_fraction}"
        );
    }

    #[test]
    fn speedup_over_spatial_is_three_to_four_x() {
        // The headline result: 3x-4x over optimal spatial blocking.
        let spatial = perf_mlups(&HSW, 18, crate::balance::code_balance_spatial()).mlups;
        let mwd = perf_mlups(&HSW, 18, crate::balance::code_balance_diamond(16)).mlups;
        let speedup = mwd / spatial;
        assert!(
            (3.0..=4.0).contains(&speedup),
            "speedup {speedup} outside the paper's 3x-4x band"
        );
    }

    #[test]
    fn mem_bw_used_never_exceeds_machine_bandwidth() {
        for threads in 1..=18 {
            for bc in [100.0, 400.0, 1216.0, 1344.0] {
                let est = perf_mlups(&HSW, threads, bc);
                assert!(est.mem_bw_used <= HSW.mem_bw * 1.0001);
            }
        }
    }
}
