//! Code balance and cache block size models (paper Sec. III).

/// Double-precision flops per lattice-site update: 4*22 + 8*20.
pub const FLOPS_PER_LUP: f64 = 248.0;

/// Bytes of state per grid cell: 40 double-complex arrays. The split
/// re/im layout stores each array's 16 bytes/cell as 8 in the re plane
/// plus 8 in the im plane; the total — and every balance model below —
/// is identical to the interleaved layout's.
pub const BYTES_PER_CELL: f64 = 640.0;

/// Eq. 8 — naive code balance: the four z-shift loop nests move 18
/// doubles/cell, the eight others 12: `4*(18+12+12)*8 = 1344 bytes/LUP`.
pub fn code_balance_naive() -> f64 {
    4.0 * (18.0 + 12.0 + 12.0) * 8.0
}

/// Eq. 9 — spatially blocked code balance: the layer condition saves the
/// four shifted reads in the Listing-1 nests: `4*(14+12+12)*8 = 1216`.
pub fn code_balance_spatial() -> f64 {
    4.0 * ((18.0 - 4.0) + 12.0 + 12.0) * 8.0
}

/// Eq. 12 — diamond-tiled code balance in bytes/LUP:
///
/// `B_C = 16 * [6*(2*Dw - 1) + (40*Dw + 12)] / (Dw^2 / 2)`
///
/// 6 H components are written on `Dw` y-lines, 6 E components on `Dw-1`;
/// every of the 40 arrays is read once per y-line plus a 12-component
/// neighbor halo; the diamond covers `Dw^2/2` LUPs.
pub fn code_balance_diamond(dw: usize) -> f64 {
    let d = dw as f64;
    16.0 * (6.0 * (2.0 * d - 1.0) + (40.0 * d + 12.0)) / (d * d / 2.0)
}

/// The paper's wavefront tile width `Ww = Dw + BZ - 1` (Sec. III-C).
pub fn wavefront_width(dw: usize, bz: usize) -> usize {
    dw + bz - 1
}

/// Eq. 11 — bytes of cache needed by one wavefront-diamond tile:
///
/// `Cs = 16 * Nx * [40 * (Dw^2/2 + Dw*(BZ-1)) + 12 * (Dw + Ww)]`
///
/// Every point of the (y,z)-plane tile footprint extends over the full x
/// dimension; 40 arrays live in the footprint of area
/// `Dw^2/2 + Dw*(BZ-1)`, and the 12 field components additionally keep a
/// `Dw + Ww` halo ring.
pub fn cache_block_bytes(nx: usize, dw: usize, bz: usize) -> f64 {
    let d = dw as f64;
    let b = bz as f64;
    let ww = wavefront_width(dw, bz) as f64;
    16.0 * nx as f64 * (40.0 * (d * d / 2.0 + d * (b - 1.0)) + 12.0 * (d + ww))
}

/// Arithmetic intensity in flops/byte for a given code balance.
pub fn arithmetic_intensity(code_balance: f64) -> f64 {
    FLOPS_PER_LUP / code_balance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq8_naive_balance() {
        assert_eq!(code_balance_naive(), 1344.0);
    }

    #[test]
    fn eq9_spatial_balance() {
        assert_eq!(code_balance_spatial(), 1216.0);
    }

    #[test]
    fn paper_intensities() {
        // "very low arithmetic intensity (0.18 flops/byte) for the naive
        // implementation" and 0.20 for optimal spatial blocking.
        assert!((arithmetic_intensity(code_balance_naive()) - 0.1845).abs() < 1e-3);
        assert!((arithmetic_intensity(code_balance_spatial()) - 0.2039).abs() < 1e-3);
    }

    #[test]
    fn eq11_worked_example() {
        // Sec. III-C: "in Fig. 4 we have Dw=4, BZ=4, and Ww=7, so we have
        // Cs = 14912 * Nx bytes per cache block."
        assert_eq!(wavefront_width(4, 4), 7);
        assert_eq!(cache_block_bytes(1, 4, 4), 14912.0);
        // Scales linearly in Nx.
        assert_eq!(cache_block_bytes(480, 4, 4), 14912.0 * 480.0);
    }

    #[test]
    fn eq11_sect3c_design_points() {
        // Sec. III-C narrative (totals over concurrently resident blocks):
        // wavefront-only parallelism at BZ=6 forces 3 thread groups on the
        // 18-core chip, and their three Dw=4 blocks total ~30 MiB —
        // exceeding the 22.5 MiB usable L3. Multi-dimensional intra-tile
        // parallelism instead allows BZ=1 with 9 threads/block: two Dw=8
        // blocks total ~20 MiB and fit.
        let nx = 480;
        let mib = 1024.0 * 1024.0;
        let three_blocks_bz6 = 3.0 * cache_block_bytes(nx, 4, 6) / mib;
        assert!(
            (three_blocks_bz6 - 30.0).abs() < 3.0,
            "got {three_blocks_bz6} MiB"
        );
        let two_blocks_bz1_dw8 = 2.0 * cache_block_bytes(nx, 8, 1) / mib;
        assert!(
            (two_blocks_bz1_dw8 - 20.0).abs() < 2.0,
            "got {two_blocks_bz1_dw8} MiB"
        );
        let usable = 22.5;
        assert!(
            three_blocks_bz6 > usable,
            "BZ=6 design must exceed usable L3"
        );
        assert!(two_blocks_bz1_dw8 < usable, "BZ=1/Dw=8 design must fit");
    }

    #[test]
    fn eq12_decreases_with_diamond_width() {
        let mut prev = f64::INFINITY;
        for dw in [2, 4, 8, 12, 16, 32] {
            let bc = code_balance_diamond(dw);
            assert!(bc < prev, "B_C must fall with Dw");
            prev = bc;
        }
        // Large-Dw asymptote: reads dominate, 2*16*(52Dw)/Dw^2 -> 0.
        assert!(code_balance_diamond(1024) < 2.0);
    }

    #[test]
    fn eq12_sample_values() {
        // Dw=4: 16*(6*7 + 172)/8 = 16*214/8 = 428 bytes/LUP.
        assert!((code_balance_diamond(4) - 428.0).abs() < 1e-9);
        // Dw=8: 16*(90 + 332)/32 = 211.
        assert!((code_balance_diamond(8) - 211.0).abs() < 1e-9);
        // Dw=16: 16*(186 + 652)/128 = 104.75.
        assert!((code_balance_diamond(16) - 104.75).abs() < 1e-9);
        // MWD at its tuned Dw=8..16 lands in the paper's reported
        // 100-430 bytes/LUP band — a ~3-6x cut vs spatial's 1216.
        assert!(code_balance_spatial() / code_balance_diamond(16) > 5.0);
    }

    #[test]
    fn cache_block_grows_monotonically() {
        for dw in [4usize, 8, 12] {
            assert!(cache_block_bytes(100, dw, 6) > cache_block_bytes(100, dw, 1));
        }
        for bz in [1usize, 6, 9] {
            assert!(cache_block_bytes(100, 8, bz) > cache_block_bytes(100, 4, bz));
        }
    }
}
