//! Machine descriptions.
//!
//! The paper's testbed is an 18-core Intel Haswell EP (Xeon E5-2699 v3,
//! 2.3 GHz nominal, Turbo off, CoD off, SMT off), 45 MiB shared L3 and
//! roughly 50 GB/s of applicable memory bandwidth (Sec. IV-A). Since this
//! reproduction runs on different hardware, the Haswell is modeled: the
//! cache simulator takes its capacities and the roofline model its
//! bandwidth and a calibrated per-core in-cache update rate.

/// A simulated (or real) machine for the performance models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    pub name: &'static str,
    pub cores: usize,
    /// Private L1 data cache per core, bytes.
    pub l1_bytes: usize,
    /// Private L2 per core, bytes.
    pub l2_bytes: usize,
    /// Shared last-level cache, bytes.
    pub l3_bytes: usize,
    pub line_bytes: usize,
    /// Applicable memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Clock, Hz.
    pub freq: f64,
    /// Fraction of L3 usable for tile data ("as a rule of thumb we assume
    /// that half the overall cache size is available", Sec. III-C).
    pub usable_cache_fraction: f64,
    /// Calibrated single-core update rate when decoupled from memory,
    /// LUP/s. The paper's kernel runs at ~5% of peak, core-bound in
    /// cache: MWD reaches ~130 MLUP/s on 18 cores at ~75% parallel
    /// efficiency, i.e. ~9.6 MLUP/s per core.
    pub core_lups: f64,
    /// Linear parallel-overhead coefficient for the in-core rate:
    /// `eff(t) = 1 / (1 + alpha * (t - 1))`. Calibrated so 18 threads
    /// give the paper's ~75% MWD parallel efficiency.
    pub parallel_alpha: f64,
}

impl MachineSpec {
    /// The paper's Haswell EP testbed.
    pub const HASWELL_E5_2699_V3: MachineSpec = MachineSpec {
        name: "Intel Xeon E5-2699 v3 (Haswell EP, 18C)",
        cores: 18,
        l1_bytes: 32 * 1024,
        l2_bytes: 256 * 1024,
        l3_bytes: 45 * 1024 * 1024,
        line_bytes: 64,
        mem_bw: 50.0e9,
        freq: 2.3e9,
        usable_cache_fraction: 0.5,
        core_lups: 9.6e6,
        parallel_alpha: 0.0196,
    };

    /// Usable L3 bytes for tile data (the paper's red vertical line in
    /// Fig. 5: 22.5 MiB on the Haswell).
    pub fn usable_l3(&self) -> f64 {
        self.l3_bytes as f64 * self.usable_cache_fraction
    }

    /// Parallel efficiency of the in-core rate at `threads` threads.
    pub fn efficiency(&self, threads: usize) -> f64 {
        1.0 / (1.0 + self.parallel_alpha * (threads.saturating_sub(1)) as f64)
    }

    /// In-core (cache-decoupled) performance limit at `threads`, LUP/s.
    pub fn core_bound(&self, threads: usize) -> f64 {
        self.core_lups * threads as f64 * self.efficiency(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HSW: MachineSpec = MachineSpec::HASWELL_E5_2699_V3;

    #[test]
    fn usable_l3_is_22_5_mib() {
        assert_eq!(HSW.usable_l3(), 22.5 * 1024.0 * 1024.0);
    }

    #[test]
    fn full_chip_efficiency_matches_paper() {
        // "a parallel efficiency of about 75% on the full chip".
        let eff = HSW.efficiency(18);
        assert!((eff - 0.75).abs() < 0.01, "got {eff}");
    }

    #[test]
    fn single_thread_efficiency_is_one() {
        assert_eq!(HSW.efficiency(1), 1.0);
    }

    #[test]
    fn full_chip_core_bound_matches_mwd_plateau() {
        // MWD decoupled performance ~130 MLUP/s on the full chip (Fig. 6a).
        let p = HSW.core_bound(18) / 1e6;
        assert!((p - 130.0).abs() < 5.0, "got {p} MLUP/s");
    }

    #[test]
    fn bandwidth_is_50_gbs() {
        assert_eq!(HSW.mem_bw, 50.0e9);
    }
}
