//! # perf-models — the paper's analytic performance models
//!
//! Pure-math implementations of Sec. III:
//!
//! - Eq. 8: naive code balance, 1344 bytes/LUP;
//! - Eq. 9: spatially blocked code balance, 1216 bytes/LUP;
//! - Eq. 10: bandwidth-bottleneck performance `P_mem = b_S / B_C`;
//! - Eq. 11: cache block size of a wavefront-diamond tile;
//! - Eq. 12: diamond-tiled code balance;
//! - machine descriptions (the 18-core Haswell EP testbed) and the
//!   bottleneck (roofline) performance model used to regenerate the
//!   paper's MLUP/s figures on simulated hardware.

pub mod balance;
pub mod machine;
pub mod roofline;

pub use balance::{
    arithmetic_intensity, cache_block_bytes, code_balance_diamond, code_balance_naive,
    code_balance_spatial, wavefront_width, BYTES_PER_CELL, FLOPS_PER_LUP,
};
pub use machine::MachineSpec;
pub use roofline::{mem_bound_mlups, perf_mlups, PerfEstimate};
