//! The tuner: prune with the cache model, score survivors, keep the best.

use crate::prune::{prune, CacheWindow};
use crate::space::{Candidate, SearchSpace};
use em_field::{GridDims, State};
use mem_sim::simulate_mwd_engine;
use mwd_core::run_mwd;
use perf_models::MachineSpec;

/// Scores a candidate in MLUP/s (higher is better).
pub trait Evaluator {
    fn evaluate(&mut self, cand: &Candidate) -> f64;
}

/// Simulator-backed evaluator: replays the candidate's traversal through
/// the cache model of `machine` and applies the roofline. Evaluates on a
/// proxy grid with the *true* Nx (which sets the per-row cache footprint,
/// Eq. 11) but reduced ny/nz/nt for speed; the tile working set and hence
/// the candidate ranking are Nx-dominated.
pub struct SimEvaluator {
    pub machine: MachineSpec,
    pub dims: GridDims,
    pub threads: usize,
    /// Cap for the proxy ny/nz (0 = no reduction).
    pub proxy_cap: usize,
}

impl SimEvaluator {
    pub fn new(machine: MachineSpec, dims: GridDims, threads: usize) -> Self {
        SimEvaluator {
            machine,
            dims,
            threads,
            proxy_cap: 96,
        }
    }

    fn proxy_dims(&self, dw: usize) -> (GridDims, usize) {
        let cap = if self.proxy_cap == 0 {
            usize::MAX
        } else {
            self.proxy_cap
        };
        // ny must comfortably hold several diamonds; nz several wavefronts.
        let ny = self.dims.ny.min(cap.max(4 * dw));
        let nz = self.dims.nz.min(cap);
        let nt = (2 * dw).clamp(4, 32).min(64);
        (
            GridDims {
                nx: self.dims.nx,
                ny,
                nz,
            },
            nt,
        )
    }
}

impl Evaluator for SimEvaluator {
    fn evaluate(&mut self, cand: &Candidate) -> f64 {
        let (dims, nt) = self.proxy_dims(cand.dw);
        let r = simulate_mwd_engine(
            &self.machine,
            dims,
            nt,
            cand.dw,
            cand.bz,
            cand.groups,
            self.threads,
        );
        r.mlups
    }
}

/// Closed-form evaluator: Eq. 12 code balance + roofline, with a
/// feasibility penalty from Eq. 11 (per-stream cache shares). Orders of
/// magnitude faster than the simulator; the figure harness uses it to
/// pick per-point configurations before running one full simulation of
/// the winner — mirroring how the paper's auto-tuner leans on the models
/// to bound the search.
pub struct ModelEvaluator {
    pub machine: MachineSpec,
    pub dims: GridDims,
    pub threads: usize,
}

impl Evaluator for ModelEvaluator {
    fn evaluate(&mut self, cand: &Candidate) -> f64 {
        let usable = self.machine.usable_l3();
        let total = crate::prune::total_block_bytes(cand, self.dims);
        // Feasibility: blocks beyond the usable cache thrash; model the
        // penalty as reverting toward the spatial-blocking code balance.
        let bc = if total <= usable {
            perf_models::code_balance_diamond(cand.dw)
        } else {
            let over = (total / usable).min(8.0);
            perf_models::code_balance_diamond(cand.dw) * over
        };
        let bc = bc.min(perf_models::code_balance_spatial());
        let est = perf_models::perf_mlups(&self.machine, self.threads, bc);
        // Mild preferences observed in practice and in the paper: larger
        // wavefronts cost cache for no balance gain; extreme x-splits
        // fragment the contiguous dimension. A small bandwidth-headroom
        // bonus breaks core-bound ties toward lower code balance (larger
        // diamonds), matching the tuner behavior in Figs. 6d/8b.
        let bz_penalty = 1.0 - 0.002 * (cand.bz as f64 - 1.0);
        let x_penalty = 1.0 - 0.002 * (cand.tg.x as f64 - 1.0);
        let headroom = 1.0 + 0.01 * (1.0 - bc / perf_models::code_balance_naive());
        est.mlups * bz_penalty * x_penalty * headroom
    }
}

/// Wall-clock evaluator: runs the candidate natively on a real state for
/// `probe_steps` steps and reports measured MLUP/s.
pub struct NativeEvaluator {
    pub state: State,
    pub probe_steps: usize,
}

impl NativeEvaluator {
    pub fn new(dims: GridDims, probe_steps: usize) -> Self {
        let mut state = State::zeros(dims);
        state.fields.fill_deterministic(0x7e57);
        state.coeffs.fill_deterministic(0x7e58);
        NativeEvaluator { state, probe_steps }
    }
}

impl Evaluator for NativeEvaluator {
    fn evaluate(&mut self, cand: &Candidate) -> f64 {
        let mut s = self.state.clone();
        let t0 = std::time::Instant::now();
        match run_mwd(&mut s, cand, self.probe_steps) {
            Ok(_) => {
                let secs = t0.elapsed().as_secs_f64();
                let lups = (s.dims().cells() * self.probe_steps) as f64;
                lups / secs / 1e6
            }
            Err(_) => f64::NEG_INFINITY,
        }
    }
}

/// Outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct TuneResult {
    pub best: Candidate,
    pub best_score: f64,
    /// All evaluated `(candidate, MLUP/s)` pairs, in evaluation order.
    pub scores: Vec<(Candidate, f64)>,
    pub pruned: usize,
}

/// Run the full tuning pipeline. Deterministic: ties break toward the
/// earlier (smaller-Dw-first) candidate.
pub fn autotune(
    space: &SearchSpace,
    dims: GridDims,
    machine: &MachineSpec,
    threads: usize,
    window: CacheWindow,
    evaluator: &mut dyn Evaluator,
) -> Option<TuneResult> {
    let cands = space.candidates(dims, threads);
    let (mut kept, pruned) = prune(cands, dims, machine, window);
    if kept.is_empty() {
        // Degenerate cases (tiny grids/caches): fall back to the smallest
        // footprint candidate rather than failing.
        let mut all = space.candidates(dims, threads);
        all.sort_by(|a, b| {
            crate::prune::total_block_bytes(a, dims)
                .partial_cmp(&crate::prune::total_block_bytes(b, dims))
                .unwrap()
        });
        kept = all.into_iter().take(8).collect();
        if kept.is_empty() {
            return None;
        }
    }
    let mut scores = Vec::with_capacity(kept.len());
    let mut best: Option<(Candidate, f64)> = None;
    for cand in kept {
        let s = evaluator.evaluate(&cand);
        scores.push((cand, s));
        if best.as_ref().is_none_or(|(_, bs)| s > *bs) {
            best = Some((cand, s));
        }
    }
    let (best, best_score) = best?;
    Some(TuneResult {
        best,
        best_score,
        scores,
        pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const HSW: MachineSpec = MachineSpec::HASWELL_E5_2699_V3;

    /// Closed-form evaluator for fast deterministic tests: prefers large
    /// diamonds (Eq. 12) with a mild penalty on groups.
    struct ModelEvaluator;
    impl Evaluator for ModelEvaluator {
        fn evaluate(&mut self, cand: &Candidate) -> f64 {
            let bc = perf_models::code_balance_diamond(cand.dw);
            perf_models::perf_mlups(&HSW, cand.threads(), bc).mlups
                * (1.0 - 0.01 * cand.groups as f64)
        }
    }

    #[test]
    fn tuner_finds_a_fitting_large_diamond() {
        let dims = GridDims::cubic(480);
        let space = SearchSpace::default_for(18);
        let mut ev = ModelEvaluator;
        let r = autotune(&space, dims, &HSW, 18, CacheWindow::default(), &mut ev)
            .expect("tuning must succeed");
        // Large shared blocks should win: Dw >= 8 and a multi-thread TG.
        assert!(r.best.dw >= 8, "best {:?}", r.best);
        assert!(r.best.tg.size() >= 6, "best {:?}", r.best);
        assert!(r.pruned > 0);
        assert!(r.best_score > 0.0);
        // Best really is the max of the scored set.
        let max = r
            .scores
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(max, r.best_score);
    }

    #[test]
    fn tuner_is_deterministic() {
        let dims = GridDims::cubic(128);
        let space = SearchSpace::default_for(6);
        let a = autotune(
            &space,
            dims,
            &HSW,
            6,
            CacheWindow::default(),
            &mut ModelEvaluator,
        )
        .unwrap();
        let b = autotune(
            &space,
            dims,
            &HSW,
            6,
            CacheWindow::default(),
            &mut ModelEvaluator,
        )
        .unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_score, b.best_score);
    }

    #[test]
    fn fallback_when_nothing_fits() {
        // A absurdly tight window prunes everything; the tuner must still
        // return the smallest-footprint candidates.
        let dims = GridDims::cubic(64);
        let space = SearchSpace::default_for(2);
        let window = CacheWindow {
            lo_frac: 0.9999,
            hi_frac: 0.99991,
        };
        let r =
            autotune(&space, dims, &HSW, 2, window, &mut ModelEvaluator).expect("fallback path");
        assert!(r.best.validate(dims).is_ok());
    }

    #[test]
    fn native_evaluator_runs_real_probes() {
        let dims = GridDims::new(8, 16, 8);
        let mut ev = NativeEvaluator::new(dims, 2);
        let cand = Candidate::one_wd(4, 2, 2);
        let score = ev.evaluate(&cand);
        assert!(score > 0.0, "native probe must complete, got {score}");
        let invalid = Candidate::one_wd(5, 2, 2);
        assert_eq!(ev.evaluate(&invalid), f64::NEG_INFINITY);
    }

    #[test]
    fn sim_evaluator_prefers_sharing_on_haswell() {
        // At 18 threads and Nx=480, 18 private blocks thrash while one
        // shared block stays decoupled — the tuner must notice.
        let dims = GridDims::cubic(480);
        let mut ev = SimEvaluator::new(HSW, dims, 18);
        ev.proxy_cap = 48; // keep the test quick
        let private = Candidate::one_wd(8, 1, 18);
        let shared = Candidate {
            dw: 8,
            bz: 1,
            tg: mwd_core::TgShape { x: 3, z: 1, c: 6 },
            groups: 1,
        };
        let s_private = ev.evaluate(&private);
        let s_shared = ev.evaluate(&shared);
        assert!(
            s_shared > s_private,
            "shared {s_shared} must beat private {s_private}"
        );
    }
}
