//! Cache-model pruning of the candidate space (Eq. 11).

use crate::space::Candidate;
use em_field::GridDims;
use perf_models::{cache_block_bytes, MachineSpec};

/// Acceptable range for the *total* resident cache-block footprint
/// (all concurrent groups), as fractions of the machine's usable L3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheWindow {
    pub lo_frac: f64,
    pub hi_frac: f64,
}

impl Default for CacheWindow {
    /// Keep candidates whose blocks use between 15% and 100% of the
    /// usable half-L3: below that the diamonds are too small to create
    /// reuse, above it they thrash.
    fn default() -> Self {
        CacheWindow {
            lo_frac: 0.15,
            hi_frac: 1.0,
        }
    }
}

/// Total cache-block bytes demanded by a candidate: `groups` concurrent
/// tiles, each of Eq. 11 size.
pub fn total_block_bytes(cand: &Candidate, dims: GridDims) -> f64 {
    cand.groups as f64 * cache_block_bytes(dims.nx, cand.dw, cand.bz)
}

/// True when the candidate's total block footprint fits the window.
pub fn cache_fit(
    cand: &Candidate,
    dims: GridDims,
    machine: &MachineSpec,
    window: CacheWindow,
) -> bool {
    let usable = machine.usable_l3();
    let total = total_block_bytes(cand, dims);
    total >= window.lo_frac * usable && total <= window.hi_frac * usable
}

/// Partition candidates into (kept, pruned).
pub fn prune(
    cands: Vec<Candidate>,
    dims: GridDims,
    machine: &MachineSpec,
    window: CacheWindow,
) -> (Vec<Candidate>, usize) {
    let before = cands.len();
    let kept: Vec<Candidate> = cands
        .into_iter()
        .filter(|c| cache_fit(c, dims, machine, window))
        .collect();
    let pruned = before - kept.len();
    (kept, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwd_core::{MwdConfig, TgShape};

    const HSW: MachineSpec = MachineSpec::HASWELL_E5_2699_V3;

    #[test]
    fn oversized_blocks_are_pruned() {
        // 18 private Dw=16 blocks at Nx=480 vastly exceed 22.5 MiB.
        let dims = GridDims::cubic(480);
        let cand = MwdConfig::one_wd(16, 1, 18);
        assert!(!cache_fit(&cand, dims, &HSW, CacheWindow::default()));
    }

    #[test]
    fn shared_block_fits_where_private_do_not() {
        // The Sec. III-C argument: one shared Dw=8/BZ=1 block fits, 18
        // private ones do not.
        let dims = GridDims::cubic(480);
        let shared = MwdConfig {
            dw: 8,
            bz: 1,
            tg: TgShape { x: 3, z: 1, c: 6 },
            groups: 1,
        };
        let private = MwdConfig::one_wd(8, 1, 18);
        let w = CacheWindow::default();
        assert!(cache_fit(&shared, dims, &HSW, w));
        assert!(!cache_fit(&private, dims, &HSW, w));
    }

    #[test]
    fn window_bounds_are_inclusive_band() {
        let dims = GridDims::cubic(480);
        let cand = MwdConfig {
            dw: 8,
            bz: 1,
            tg: TgShape::SINGLE,
            groups: 1,
        };
        let total = total_block_bytes(&cand, dims);
        let usable = HSW.usable_l3();
        // ~10.8 MiB of 22.5 MiB usable: ~48%.
        let frac = total / usable;
        assert!((0.4..0.6).contains(&frac), "got {frac}");
        assert!(cache_fit(&cand, dims, &HSW, CacheWindow::default()));
        // A window excluding it from below:
        assert!(!cache_fit(
            &cand,
            dims,
            &HSW,
            CacheWindow {
                lo_frac: 0.6,
                hi_frac: 1.0
            }
        ));
    }

    #[test]
    fn prune_reports_counts() {
        let dims = GridDims::cubic(480);
        let space = crate::space::SearchSpace::default_for(18);
        let cands = space.candidates(dims, 18);
        let n = cands.len();
        let (kept, pruned) = prune(cands, dims, &HSW, CacheWindow::default());
        assert_eq!(kept.len() + pruned, n);
        assert!(!kept.is_empty(), "some candidate must fit the Haswell");
        assert!(pruned > 0, "some candidate must be pruned");
        // The paper's tuned full-chip configurations share cache blocks.
        assert!(kept.iter().any(|c| c.tg.size() >= 6));
    }
}
