//! # autotune — MWD parameter search (paper Sec. II-A)
//!
//! "We use the auto-tuner in the Girih system to select the diamond tile
//! size, the wavefront tile width, and the TG size in all dimensions to
//! achieve the best performance. To shorten the auto-tuning process, the
//! parameter search space is narrowed down to diamond tiles that fit
//! within a predefined cache size range using a cache block size model."
//!
//! The same structure lives here: [`space`] enumerates `(Dw, BZ,
//! TG shape, groups)` candidates, [`prune`] filters them with Eq. 11
//! against the usable cache window, and [`tuner`] scores the survivors
//! with a pluggable evaluator — simulator-backed for the paper-scale
//! figures, wall-clock for native runs.
//!
//! On top of the search sits the persistent subsystem the serving path
//! uses: [`fingerprint`] identifies the host (threads + SIMD ISA +
//! machine model), [`cache`] stores tuned winners per `(fingerprint,
//! grid, engine, thread budget)` key and resolves misses through the
//! staged lookup → model-pruned search → optional native refinement
//! pipeline, [`shared`] wraps the cache in a lock for concurrent
//! resolvers (the job service's admission path), and the shared
//! [`em_json`] crate (re-exported as [`jsonio`]) reads/writes the cache
//! file.

pub mod cache;
pub mod fingerprint;
pub mod prune;
pub mod shared;
pub mod space;
pub mod tuner;

/// Historical module path: the cache's JSON I/O now lives in the shared
/// `em_json` crate.
pub use em_json as jsonio;

pub use cache::{
    default_cache_path, resolve, Resolution, ResolveOptions, Stage, TuneCache, TuneEntry, TuneKey,
};
pub use fingerprint::{host_fingerprint, machine_slug};
pub use prune::{cache_fit, CacheWindow};
pub use shared::SharedTuneCache;
pub use space::{Candidate, SearchSpace};
pub use tuner::{autotune, Evaluator, ModelEvaluator, NativeEvaluator, SimEvaluator, TuneResult};
