//! A tuning-cache handle that many threads can resolve through at once.
//!
//! The batch runner resolves engines serially before any work starts, so
//! a plain `&mut TuneCache` is enough there. The job service admits
//! requests from concurrent connection handlers, and each admission may
//! need an `engine = "auto"` resolution — without coordination, N
//! simultaneous requests for the same key would pay the model/sim search
//! (and any native probes) N times over.
//!
//! [`SharedTuneCache`] fixes both problems:
//!
//! - **interior locking**: the cache itself sits behind one mutex, so
//!   lookups and stores are race-free from any number of threads;
//! - **per-key single flight**: a miss claims its key in an in-flight
//!   set before searching; concurrent resolvers of the *same* key block
//!   on a condvar and are served the freshly stored entry as a cache
//!   hit, so the search (and every native probe) is paid exactly once.
//!   Resolvers of *different* keys never wait on each other's searches —
//!   the cache lock is released while a miss computes.
//! - **single flush path**: [`SharedTuneCache::save`] is the one place
//!   the backing file is written, under the same lock as the entries.

use crate::cache::{resolve, Resolution, ResolveOptions, TuneCache, TuneKey};
use std::collections::HashSet;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

struct Inner {
    cache: Mutex<TuneCache>,
    /// Key ids currently being searched by some thread.
    inflight: Mutex<HashSet<String>>,
    /// Signalled whenever a search finishes (successfully or not).
    done: Condvar,
}

/// A cloneable, thread-safe handle to one [`TuneCache`].
#[derive(Clone)]
pub struct SharedTuneCache {
    inner: Arc<Inner>,
}

/// The payload is always left consistent (plain inserts/removes), so a
/// panicking peer's poison flag carries no information worth aborting
/// for.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl SharedTuneCache {
    /// Wrap an already-loaded cache.
    pub fn new(cache: TuneCache) -> SharedTuneCache {
        SharedTuneCache {
            inner: Arc::new(Inner {
                cache: Mutex::new(cache),
                inflight: Mutex::new(HashSet::new()),
                done: Condvar::new(),
            }),
        }
    }

    /// An empty, unpersisted shared cache.
    pub fn in_memory() -> SharedTuneCache {
        SharedTuneCache::new(TuneCache::in_memory())
    }

    /// Load a file-backed shared cache (missing file = empty cache).
    pub fn load(path: &Path) -> Result<SharedTuneCache, String> {
        Ok(SharedTuneCache::new(TuneCache::load(path)?))
    }

    pub fn len(&self) -> usize {
        relock(self.inner.cache.lock()).len()
    }

    pub fn is_empty(&self) -> bool {
        relock(self.inner.cache.lock()).is_empty()
    }

    /// Run `f` against the locked cache (for inspection; keep it short).
    pub fn with<R>(&self, f: impl FnOnce(&TuneCache) -> R) -> R {
        f(&relock(self.inner.cache.lock()))
    }

    /// Resolve a key, paying each distinct key's search at most once no
    /// matter how many threads ask concurrently. Threads that arrive
    /// while the search runs block and then observe a cache hit.
    pub fn resolve(&self, key: &TuneKey, opts: &ResolveOptions) -> Result<Resolution, String> {
        let id = key.id();
        loop {
            if !opts.force {
                let cache = relock(self.inner.cache.lock());
                if let Some(entry) = cache.get(key) {
                    return Ok(Resolution {
                        config: entry.config,
                        score_mlups: entry.score_mlups,
                        stage: entry.stage,
                        cache_hit: true,
                        native_probes: 0,
                    });
                }
            }
            let mut inflight = relock(self.inner.inflight.lock());
            if !inflight.contains(&id) {
                inflight.insert(id.clone());
                break;
            }
            // Another thread is searching this key: wait for it, then
            // re-check the cache (or reclaim the key if it failed).
            let _unused = relock(self.inner.done.wait(inflight));
        }

        // Search without holding either lock, so other keys resolve
        // concurrently. A scratch cache reuses the staged miss path and
        // hands back the entry to publish.
        let result = (|| {
            let mut scratch = TuneCache::in_memory();
            let resolution = resolve(&mut scratch, key, opts)?;
            let entry = scratch
                .get(key)
                .cloned()
                .ok_or_else(|| format!("resolver stored no entry for key {id}"))?;
            Ok::<_, String>((resolution, entry))
        })();

        let result = match result {
            Ok((resolution, entry)) => {
                relock(self.inner.cache.lock()).put(entry);
                Ok(resolution)
            }
            Err(e) => Err(e),
        };
        relock(self.inner.inflight.lock()).remove(&id);
        self.inner.done.notify_all();
        result
    }

    /// Persist to the backing file if there is one and entries changed
    /// (the single flush path). Returns whether a write happened.
    pub fn save(&self) -> Result<bool, String> {
        relock(self.inner.cache.lock()).save()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_field::GridDims;
    use perf_models::MachineSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const HSW: MachineSpec = MachineSpec::HASWELL_E5_2699_V3;

    fn key(dims: GridDims, threads: usize) -> TuneKey {
        TuneKey::for_host(&HSW, dims, "mwd", threads)
    }

    fn quick_opts() -> ResolveOptions {
        ResolveOptions {
            sim_top: 1,
            sim_proxy_cap: 8,
            ..Default::default()
        }
    }

    #[test]
    fn shared_miss_then_hit_matches_the_plain_cache() {
        let shared = SharedTuneCache::in_memory();
        let k = key(GridDims::cubic(16), 2);
        let first = shared.resolve(&k, &quick_opts()).unwrap();
        assert!(!first.cache_hit);
        let second = shared.resolve(&k, &quick_opts()).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.config, first.config);
        assert_eq!(shared.len(), 1);

        let mut plain = TuneCache::in_memory();
        let reference = resolve(&mut plain, &k, &quick_opts()).unwrap();
        assert_eq!(reference.config, first.config, "same staged pipeline");
    }

    #[test]
    fn concurrent_resolvers_of_one_key_pay_exactly_one_search() {
        // The satellite stress test: many threads, one key, native
        // refinement enabled — the probe must be paid exactly once.
        let shared = SharedTuneCache::in_memory();
        let k = key(GridDims::cubic(8), 2);
        let opts = ResolveOptions {
            sim_top: 1,
            sim_proxy_cap: 8,
            refine_top: 1,
            probe_steps: 1,
            ..Default::default()
        };
        let misses = AtomicUsize::new(0);
        let probes = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let r = shared.resolve(&k, &opts).unwrap();
                    if !r.cache_hit {
                        misses.fetch_add(1, Ordering::SeqCst);
                    }
                    probes.fetch_add(r.native_probes, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(misses.load(Ordering::SeqCst), 1, "one thread searches");
        assert_eq!(probes.load(Ordering::SeqCst), 1, "one native probe paid");
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn distinct_keys_resolve_concurrently_without_interference() {
        let shared = SharedTuneCache::in_memory();
        let keys: Vec<TuneKey> = (0..4)
            .map(|i| key(GridDims::cubic(8 + 4 * i), 1 + (i % 2)))
            .collect();
        std::thread::scope(|scope| {
            for k in &keys {
                let shared = shared.clone();
                scope.spawn(move || {
                    let r = shared.resolve(k, &quick_opts()).unwrap();
                    assert!(!r.cache_hit);
                });
            }
        });
        assert_eq!(shared.len(), keys.len());
        for k in &keys {
            assert!(shared.resolve(k, &quick_opts()).unwrap().cache_hit);
        }
    }

    #[test]
    fn shared_save_is_the_single_flush_path() {
        let dir = std::env::temp_dir().join(format!("shared_tune_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("tune_cache.json");
        let shared = SharedTuneCache::load(&path).unwrap();
        shared
            .resolve(&key(GridDims::cubic(16), 1), &quick_opts())
            .unwrap();
        assert!(shared.save().unwrap(), "dirty cache writes");
        assert!(!shared.save().unwrap(), "clean cache does not rewrite");
        let reloaded = SharedTuneCache::load(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
