//! Search-space enumeration.

use em_field::GridDims;
use mwd_core::{MwdConfig, TgShape};

/// One tuning candidate (a full MWD configuration).
pub type Candidate = MwdConfig;

/// The tunable parameter ranges.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// Diamond widths (even, >= 2).
    pub dw: Vec<usize>,
    /// Wavefront block widths.
    pub bz: Vec<usize>,
    /// Thread-group sizes to consider (each must divide `threads`).
    pub tg_sizes: Vec<usize>,
}

impl SearchSpace {
    /// The paper-style default space for a machine with `threads` threads:
    /// Dw in {4, 8, ..}, BZ in {1..10}, TG sizes over the divisors of the
    /// thread count.
    pub fn default_for(threads: usize) -> Self {
        SearchSpace {
            dw: vec![2, 4, 8, 12, 16, 24, 32],
            bz: vec![1, 2, 3, 4, 6, 9],
            tg_sizes: (1..=threads)
                .filter(|s| threads.is_multiple_of(*s))
                .collect(),
        }
    }

    /// All valid candidates for `dims` at `threads` total threads.
    pub fn candidates(&self, dims: GridDims, threads: usize) -> Vec<Candidate> {
        let mut out = Vec::new();
        for &dw in &self.dw {
            for &bz in &self.bz {
                for &tg_size in &self.tg_sizes {
                    if !threads.is_multiple_of(tg_size) {
                        continue;
                    }
                    let groups = threads / tg_size;
                    for tg in TgShape::enumerate(tg_size) {
                        let cand = MwdConfig { dw, bz, tg, groups };
                        if cand.validate(dims).is_ok() {
                            out.push(cand);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_covers_paper_parameters() {
        let s = SearchSpace::default_for(18);
        assert!(s.dw.contains(&4) && s.dw.contains(&16));
        assert!(s.bz.contains(&1) && s.bz.contains(&6) && s.bz.contains(&9));
        assert_eq!(s.tg_sizes, vec![1, 2, 3, 6, 9, 18]);
    }

    #[test]
    fn candidates_are_valid_and_thread_exact() {
        let dims = GridDims::cubic(64);
        let s = SearchSpace::default_for(6);
        let cands = s.candidates(dims, 6);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.validate(dims).is_ok());
            assert_eq!(c.threads(), 6);
        }
        // Both extremes present: 6 independent 1WD groups and one 6-thread
        // shared group.
        assert!(cands.iter().any(|c| c.groups == 6 && c.tg.size() == 1));
        assert!(cands.iter().any(|c| c.groups == 1 && c.tg.size() == 6));
    }

    #[test]
    fn z_parallelism_respects_bz() {
        let dims = GridDims::cubic(64);
        let cands = SearchSpace::default_for(4).candidates(dims, 4);
        for c in &cands {
            assert!(c.tg.z <= c.bz, "invalid candidate {c:?}");
        }
    }

    #[test]
    fn no_duplicates() {
        let dims = GridDims::cubic(32);
        let cands = SearchSpace::default_for(2).candidates(dims, 2);
        let mut set = std::collections::HashSet::new();
        for c in &cands {
            assert!(set.insert(format!("{c:?}")), "duplicate {c:?}");
        }
    }
}
