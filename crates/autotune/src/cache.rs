//! The persistent, per-host tuning cache and the staged resolver.
//!
//! The paper's auto-tuner is only worth its cost if each `(machine,
//! grid, thread budget)` point is paid for once. This module makes the
//! search a cached subsystem: [`resolve`] answers "which [`MwdConfig`]
//! should this job run?" by staged lookup —
//!
//! 1. **cache hit**: a previous answer for the same [`TuneKey`]
//!    (host fingerprint, grid, engine kind, thread count) is returned
//!    as-is, with no model, simulator or native work;
//! 2. **model-pruned search**: the candidate space is pruned against the
//!    cache window (Eq. 11) and ranked with the closed-form
//!    [`ModelEvaluator`], then the top few finalists are re-scored by
//!    the cache-simulator-backed [`SimEvaluator`];
//! 3. **optional native refinement**: the best sim-ranked finalists are
//!    probed with wall-clock [`NativeEvaluator`] runs on a proxy grid;
//! 4. **store**: the winner is recorded and, for a file-backed cache,
//!    persisted as JSON next to the other result artifacts.
//!
//! Everything up to the native stage is deterministic, so two misses on
//! the same key pick the same winner; the native stage trades that for
//! measured truth, which is exactly what the cache then pins down.

use crate::fingerprint::host_fingerprint;
use crate::prune::{prune, CacheWindow};
use crate::space::SearchSpace;
use crate::tuner::{Evaluator, ModelEvaluator, NativeEvaluator, SimEvaluator};
use em_field::GridDims;
use em_json::{self as jsonio, JValue};
use mwd_core::MwdConfig;
use perf_models::MachineSpec;
use std::path::{Path, PathBuf};

/// Which stage of the pipeline produced a cached configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Closed-form model ranking only (degenerate spaces).
    Model,
    /// Cache-simulator scoring of the model finalists.
    Sim,
    /// Wall-clock native probes of the sim finalists.
    Native,
}

impl Stage {
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Model => "model",
            Stage::Sim => "sim",
            Stage::Native => "native",
        }
    }

    pub fn parse(s: &str) -> Result<Stage, String> {
        match s {
            "model" => Ok(Stage::Model),
            "sim" => Ok(Stage::Sim),
            "native" => Ok(Stage::Native),
            other => Err(format!("unknown tuning stage `{other}`")),
        }
    }
}

/// What a tuning answer is keyed by. Two jobs with equal keys are
/// interchangeable as far as the tuner is concerned.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneKey {
    /// Host fingerprint: threads + active ISA + machine model
    /// (see [`host_fingerprint`]).
    pub fingerprint: String,
    pub dims: GridDims,
    /// Engine kind the configuration is for (`mwd` / `mwd-periodic-x`).
    pub engine: String,
    /// Total threads the configuration must occupy (the job's
    /// thread-budget slice).
    pub threads: usize,
}

impl TuneKey {
    /// The key for this host running `machine` as its model.
    pub fn for_host(
        machine: &MachineSpec,
        dims: GridDims,
        engine: &str,
        threads: usize,
    ) -> TuneKey {
        TuneKey {
            fingerprint: host_fingerprint(machine),
            dims,
            engine: engine.to_string(),
            threads,
        }
    }

    /// Canonical identity string (also the de-duplication key on disk).
    pub fn id(&self) -> String {
        key_id(
            &self.fingerprint,
            &format!("{}", self.dims),
            &self.engine,
            self.threads,
        )
    }
}

/// The one place the identity encoding lives: [`TuneKey::id`] and the
/// stored entries' keys must never drift apart.
fn key_id(fingerprint: &str, dims: &str, engine: &str, threads: usize) -> String {
    format!("{fingerprint}|{dims}|{engine}|t{threads}")
}

/// One stored tuning answer.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneEntry {
    pub fingerprint: String,
    /// `NXxNYxNZ`, matching [`GridDims`]'s `Display`.
    pub dims: String,
    pub engine: String,
    pub threads: usize,
    pub config: MwdConfig,
    pub score_mlups: f64,
    pub stage: Stage,
    /// Native probes spent producing this entry (0 for model/sim).
    pub native_probes: usize,
}

impl TuneEntry {
    fn key_id(&self) -> String {
        key_id(&self.fingerprint, &self.dims, &self.engine, self.threads)
    }

    fn to_json(&self) -> JValue {
        JValue::Obj(vec![
            ("fingerprint".to_string(), JValue::str(&self.fingerprint)),
            ("dims".to_string(), JValue::str(&self.dims)),
            ("engine".to_string(), JValue::str(&self.engine)),
            ("threads".to_string(), JValue::Num(self.threads as f64)),
            ("config".to_string(), JValue::str(self.config.to_compact())),
            ("score_mlups".to_string(), JValue::Num(self.score_mlups)),
            ("stage".to_string(), JValue::str(self.stage.as_str())),
            (
                "native_probes".to_string(),
                JValue::Num(self.native_probes as f64),
            ),
        ])
    }

    fn from_json(v: &JValue) -> Result<TuneEntry, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry is missing string field `{key}`"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JValue::as_f64)
                .ok_or_else(|| format!("entry is missing numeric field `{key}`"))
        };
        Ok(TuneEntry {
            fingerprint: str_field("fingerprint")?,
            dims: str_field("dims")?,
            engine: str_field("engine")?,
            threads: num_field("threads")? as usize,
            config: MwdConfig::from_compact(&str_field("config")?)?,
            score_mlups: num_field("score_mlups")?,
            stage: Stage::parse(&str_field("stage")?)?,
            native_probes: num_field("native_probes")? as usize,
        })
    }
}

const CACHE_VERSION: f64 = 1.0;

/// The tuning cache: an ordered set of [`TuneEntry`]s, optionally backed
/// by a JSON file. In-memory caches (no path) give `engine = "auto"`
/// resolution without touching the filesystem.
#[derive(Clone, Debug)]
pub struct TuneCache {
    path: Option<PathBuf>,
    entries: Vec<TuneEntry>,
    dirty: bool,
}

/// The conventional on-disk location, next to the other result
/// artifacts.
pub fn default_cache_path() -> PathBuf {
    PathBuf::from("results").join("tune_cache.json")
}

impl TuneCache {
    /// An empty, unpersisted cache.
    pub fn in_memory() -> TuneCache {
        TuneCache {
            path: None,
            entries: Vec::new(),
            dirty: false,
        }
    }

    /// Load a file-backed cache; a missing file is an empty cache (first
    /// run), a malformed one is an error naming the path.
    pub fn load(path: &Path) -> Result<TuneCache, String> {
        let mut cache = TuneCache {
            path: Some(path.to_path_buf()),
            entries: Vec::new(),
            dirty: false,
        };
        if !path.exists() {
            return Ok(cache);
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read tuning cache {}: {e}", path.display()))?;
        let doc =
            jsonio::parse(&text).map_err(|e| format!("tuning cache {}: {e}", path.display()))?;
        let version = doc.get("version").and_then(JValue::as_f64).unwrap_or(0.0);
        if version != CACHE_VERSION {
            return Err(format!(
                "tuning cache {}: unsupported version {version} (expected {CACHE_VERSION})",
                path.display()
            ));
        }
        let entries = doc
            .get("entries")
            .and_then(JValue::as_arr)
            .ok_or_else(|| format!("tuning cache {}: missing `entries` array", path.display()))?;
        for (i, e) in entries.iter().enumerate() {
            let entry = TuneEntry::from_json(e)
                .map_err(|e| format!("tuning cache {} entry #{i}: {e}", path.display()))?;
            cache.entries.push(entry);
        }
        Ok(cache)
    }

    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    pub fn entries(&self) -> &[TuneEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, key: &TuneKey) -> Option<&TuneEntry> {
        let id = key.id();
        self.entries.iter().find(|e| e.key_id() == id)
    }

    /// Insert or replace the entry for its key.
    pub fn put(&mut self, entry: TuneEntry) {
        let id = entry.key_id();
        match self.entries.iter_mut().find(|e| e.key_id() == id) {
            Some(slot) => {
                if *slot == entry {
                    return;
                }
                *slot = entry;
            }
            None => self.entries.push(entry),
        }
        self.dirty = true;
    }

    fn to_json(&self) -> JValue {
        JValue::Obj(vec![
            ("version".to_string(), JValue::Num(CACHE_VERSION)),
            (
                "entries".to_string(),
                JValue::Arr(self.entries.iter().map(TuneEntry::to_json).collect()),
            ),
        ])
    }

    /// Persist to the backing file if there is one and entries changed.
    /// Returns whether a write happened.
    pub fn save(&mut self) -> Result<bool, String> {
        let Some(path) = &self.path else {
            return Ok(false);
        };
        if !self.dirty {
            return Ok(false);
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
        }
        // Write-then-rename so a crash mid-write (or a concurrent
        // reader) never sees a torn file — `load` hard-errors on
        // malformed JSON, so a torn write would otherwise wedge every
        // later tuned run until the file is deleted by hand.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_json().pretty())
            .map_err(|e| format!("cannot write tuning cache {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("cannot move tuning cache into {}: {e}", path.display())
        })?;
        self.dirty = false;
        Ok(true)
    }
}

/// Knobs for [`resolve`]'s miss path.
#[derive(Clone, Debug)]
pub struct ResolveOptions {
    /// The modeled machine driving pruning, model and simulator scores.
    pub machine: MachineSpec,
    pub window: CacheWindow,
    /// Sim-score at most this many model-ranked finalists.
    pub sim_top: usize,
    /// Cap on the simulator's proxy ny/nz (0 = the [`SimEvaluator`]
    /// default). The ranking is Nx-dominated, so a tight cap keeps
    /// resolution interactive without reordering realistic spaces.
    pub sim_proxy_cap: usize,
    /// Natively probe at most this many sim-ranked finalists
    /// (0 disables the native stage).
    pub refine_top: usize,
    /// Steps per native probe.
    pub probe_steps: usize,
    /// Retune even on a cache hit.
    pub force: bool,
}

impl Default for ResolveOptions {
    fn default() -> Self {
        ResolveOptions {
            machine: MachineSpec::HASWELL_E5_2699_V3,
            window: CacheWindow::default(),
            sim_top: 4,
            sim_proxy_cap: 32,
            refine_top: 0,
            probe_steps: 4,
            force: false,
        }
    }
}

/// What [`resolve`] hands back: the configuration to run plus where it
/// came from.
#[derive(Clone, Debug, PartialEq)]
pub struct Resolution {
    pub config: MwdConfig,
    pub score_mlups: f64,
    pub stage: Stage,
    pub cache_hit: bool,
    /// Native probes spent by *this* resolution (0 on a hit).
    pub native_probes: usize,
}

/// Resolve a key through the staged pipeline, consulting and updating
/// `cache` (the caller persists file-backed caches via
/// [`TuneCache::save`]).
pub fn resolve(
    cache: &mut TuneCache,
    key: &TuneKey,
    opts: &ResolveOptions,
) -> Result<Resolution, String> {
    if !opts.force {
        if let Some(entry) = cache.get(key) {
            return Ok(Resolution {
                config: entry.config,
                score_mlups: entry.score_mlups,
                stage: entry.stage,
                cache_hit: true,
                native_probes: 0,
            });
        }
    }
    let (config, score_mlups, stage, native_probes) = tune_miss(key, opts)?;
    cache.put(TuneEntry {
        fingerprint: key.fingerprint.clone(),
        dims: format!("{}", key.dims),
        engine: key.engine.clone(),
        threads: key.threads,
        config,
        score_mlups,
        stage,
        native_probes,
    });
    Ok(Resolution {
        config,
        score_mlups,
        stage,
        cache_hit: false,
        native_probes,
    })
}

/// The miss path: model-pruned search, sim scoring, optional native
/// refinement. Deterministic up to the native stage.
fn tune_miss(
    key: &TuneKey,
    opts: &ResolveOptions,
) -> Result<(MwdConfig, f64, Stage, usize), String> {
    let dims = key.dims;
    let threads = key.threads.max(1);
    let space = SearchSpace::default_for(threads);
    let cands = space.candidates(dims, threads);
    if cands.is_empty() {
        return Err(format!(
            "no valid MWD candidate for {dims} at {threads} thread(s)"
        ));
    }
    let (mut kept, _) = prune(cands.clone(), dims, &opts.machine, opts.window);
    if kept.is_empty() {
        // Degenerate grids/windows: rank everything instead of failing.
        kept = cands;
    }

    // Stage: model ranking of every pruned survivor (closed form, cheap).
    let mut model = ModelEvaluator {
        machine: opts.machine,
        dims,
        threads,
    };
    let mut ranked: Vec<(MwdConfig, f64)> = kept
        .into_iter()
        .map(|c| {
            let s = model.evaluate(&c);
            (c, s)
        })
        .collect();
    // Stable sort: ties keep enumeration order, so the ranking is
    // deterministic for a fixed MachineSpec.
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Stage: cache-simulator scoring of the model finalists.
    let sim_top = opts.sim_top.max(1).min(ranked.len());
    let mut sim = SimEvaluator::new(opts.machine, dims, threads);
    if opts.sim_proxy_cap > 0 {
        sim.proxy_cap = opts.sim_proxy_cap;
    }
    let mut finalists: Vec<(MwdConfig, f64)> = ranked[..sim_top]
        .iter()
        .map(|(c, _)| (*c, sim.evaluate(c)))
        .collect();
    finalists.sort_by(|a, b| b.1.total_cmp(&a.1));
    let (mut best, mut best_score) = finalists[0];
    let mut stage = Stage::Sim;

    // Stage: native refinement of the sim finalists on a proxy grid.
    let mut probes = 0;
    if opts.refine_top > 0 {
        let k = opts.refine_top.min(finalists.len());
        let proxy = GridDims {
            nx: dims.nx,
            ny: dims.ny.clamp(1, 24),
            nz: dims.nz.clamp(1, 24),
        };
        let mut native = NativeEvaluator::new(proxy, opts.probe_steps.max(1));
        let mut measured: Option<(MwdConfig, f64)> = None;
        for (cand, _) in &finalists[..k] {
            let s = native.evaluate(cand);
            probes += 1;
            if s > 0.0 && measured.as_ref().is_none_or(|(_, ms)| s > *ms) {
                measured = Some((*cand, s));
            }
        }
        if let Some((cand, s)) = measured {
            best = cand;
            best_score = s;
            stage = Stage::Native;
        }
    }
    Ok((best, best_score, stage, probes))
}

#[cfg(test)]
mod tests {
    use super::*;

    const HSW: MachineSpec = MachineSpec::HASWELL_E5_2699_V3;

    fn key(dims: GridDims, threads: usize) -> TuneKey {
        TuneKey::for_host(&HSW, dims, "mwd", threads)
    }

    fn quick_opts() -> ResolveOptions {
        ResolveOptions {
            sim_top: 2,
            ..Default::default()
        }
    }

    #[test]
    fn miss_then_hit_returns_the_same_config_without_work() {
        let mut cache = TuneCache::in_memory();
        let k = key(GridDims::cubic(32), 2);
        let first = resolve(&mut cache, &k, &quick_opts()).unwrap();
        assert!(!first.cache_hit);
        assert!(first.config.validate(k.dims).is_ok());
        assert_eq!(first.config.threads(), 2);
        let second = resolve(&mut cache, &k, &quick_opts()).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.native_probes, 0);
        assert_eq!(second.config, first.config);
        assert_eq!(second.score_mlups, first.score_mlups);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let mut cache = TuneCache::in_memory();
        let o = quick_opts();
        resolve(&mut cache, &key(GridDims::cubic(32), 2), &o).unwrap();
        resolve(&mut cache, &key(GridDims::cubic(32), 1), &o).unwrap();
        resolve(&mut cache, &key(GridDims::new(16, 16, 48), 2), &o).unwrap();
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn force_retunes_but_stays_deterministic() {
        let mut cache = TuneCache::in_memory();
        let k = key(GridDims::cubic(32), 2);
        let first = resolve(&mut cache, &k, &quick_opts()).unwrap();
        let forced = resolve(
            &mut cache,
            &k,
            &ResolveOptions {
                force: true,
                ..quick_opts()
            },
        )
        .unwrap();
        assert!(!forced.cache_hit);
        assert_eq!(forced.config, first.config, "sim path is deterministic");
        assert_eq!(forced.score_mlups, first.score_mlups);
    }

    #[test]
    fn cache_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("autotune_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("tune_cache.json");

        let mut cache = TuneCache::load(&path).unwrap();
        assert!(cache.is_empty(), "missing file loads empty");
        let k = key(GridDims::cubic(32), 2);
        let first = resolve(&mut cache, &k, &quick_opts()).unwrap();
        assert!(cache.save().unwrap(), "dirty cache writes");
        assert!(!cache.save().unwrap(), "clean cache does not rewrite");

        let mut reloaded = TuneCache::load(&path).unwrap();
        assert_eq!(reloaded.entries(), cache.entries());
        let hit = resolve(&mut reloaded, &k, &quick_opts()).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.config, first.config);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_cache_files_error_with_the_path() {
        let dir = std::env::temp_dir().join(format!("autotune_cache_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tune_cache.json");
        std::fs::write(&path, "{\"version\": 99, \"entries\": []}\n").unwrap();
        let err = TuneCache::load(&path).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        std::fs::write(&path, "not json").unwrap();
        assert!(TuneCache::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn native_refinement_probes_and_still_caches() {
        let mut cache = TuneCache::in_memory();
        let k = key(GridDims::new(8, 12, 12), 2);
        let opts = ResolveOptions {
            sim_top: 2,
            refine_top: 2,
            probe_steps: 2,
            ..Default::default()
        };
        let r = resolve(&mut cache, &k, &opts).unwrap();
        assert!(!r.cache_hit);
        assert_eq!(r.native_probes, 2);
        assert_eq!(r.stage, Stage::Native);
        assert!(r.config.validate(k.dims).is_ok());
        // Second resolution is a pure hit: zero native probes.
        let hit = resolve(&mut cache, &k, &opts).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.native_probes, 0);
        assert_eq!(hit.config, r.config);
    }

    #[test]
    fn entry_json_roundtrips() {
        let entry = TuneEntry {
            fingerprint: "2t-avx2-test".to_string(),
            dims: "24x24x72".to_string(),
            engine: "mwd-periodic-x".to_string(),
            threads: 4,
            config: MwdConfig::one_wd(8, 2, 4),
            score_mlups: 123.5,
            stage: Stage::Native,
            native_probes: 3,
        };
        let back = TuneEntry::from_json(&entry.to_json()).unwrap();
        assert_eq!(back, entry);
    }
}
