//! Machine fingerprints for the persistent tuning cache.
//!
//! A tuned configuration is only valid for the machine it was tuned on:
//! the host's thread count bounds the search space, the dispatched SIMD
//! ISA changes the in-core rate the native probes measure, and the
//! modeled [`MachineSpec`] drives the cache-window pruning and the
//! simulator scores. The fingerprint folds all three into one stable
//! string, so a cache file copied between hosts (or a host whose
//! `MWD_SIMD` override changes the active ISA) misses cleanly instead of
//! serving stale winners.

use perf_models::MachineSpec;

/// A deterministic slug for a model machine: name plus the parameters
/// the tuner actually consumes (cores, usable L3, bandwidth, in-core
/// rate), so editing a `MachineSpec` invalidates its cache entries.
pub fn machine_slug(m: &MachineSpec) -> String {
    let name: String = m
        .name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    // Collapse runs of `-` so punctuation-heavy names stay readable.
    let mut compact = String::with_capacity(name.len());
    for c in name.chars() {
        if c != '-' || !compact.ends_with('-') {
            compact.push(c);
        }
    }
    format!(
        "{}-{}c-l3.{}k-bw.{:.0}-lups.{:.0}",
        compact.trim_matches('-'),
        m.cores,
        m.l3_bytes / 1024,
        m.mem_bw / 1e6,
        m.core_lups / 1e3,
    )
}

/// The fingerprint of *this* host running under the model `machine`:
/// `"<host threads>t-<active ISA>-<machine slug>"`.
pub fn host_fingerprint(machine: &MachineSpec) -> String {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{threads}t-{}-{}",
        em_kernels::active_isa().name(),
        machine_slug(machine)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const HSW: MachineSpec = MachineSpec::HASWELL_E5_2699_V3;

    #[test]
    fn slug_is_stable_and_filesystem_safe() {
        let slug = machine_slug(&HSW);
        assert_eq!(
            slug,
            "intel-xeon-e5-2699-v3-haswell-ep-18c-18c-l3.46080k-bw.50000-lups.9600"
        );
        assert!(slug
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'));
    }

    #[test]
    fn slug_tracks_model_parameters() {
        let mut edited = HSW;
        edited.mem_bw = 60.0e9;
        assert_ne!(machine_slug(&HSW), machine_slug(&edited));
    }

    #[test]
    fn host_fingerprint_embeds_threads_isa_and_machine() {
        let fp = host_fingerprint(&HSW);
        assert!(fp.ends_with(&machine_slug(&HSW)), "{fp}");
        let isa = em_kernels::active_isa().name();
        assert!(fp.contains(&format!("t-{isa}-")), "{fp}");
        let threads: usize = fp.split('t').next().unwrap().parse().unwrap();
        assert!(threads >= 1);
    }
}
