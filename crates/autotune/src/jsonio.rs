//! Minimal JSON reading and writing for the tuning cache.
//!
//! The workspace's existing JSON support (`em_scenarios::json`) is a
//! write-only artifact formatter in a crate *above* this one, and the
//! persistent tuning cache must be read back across processes — so this
//! module carries both directions, hand-rolled in the same no-crates.io
//! spirit as the scenario TOML codec. The subset is full JSON minus
//! exotic escapes: objects (insertion-ordered), arrays, strings with the
//! common escapes plus `\uXXXX`, numbers, booleans and null.
//!
//! The CLI integration tests also use [`parse`] to check artifact
//! schemas, which keeps the reader honest against the writer in
//! `em_scenarios::json` (both emit the same dialect).

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve insertion order so that
/// `parse(render(v)) == v` and rendered files are diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum JValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JValue>),
    Obj(Vec<(String, JValue)>),
}

impl JValue {
    pub fn str(s: impl Into<String>) -> JValue {
        JValue::Str(s.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JValue> {
        match self {
            JValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JValue]> {
        match self {
            JValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline (the
    /// same shape `em_scenarios::json` produces).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, level: usize) {
        match self {
            JValue::Null => out.push_str("null"),
            JValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JValue::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n:?}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JValue::Str(s) => escape_into(out, s),
            JValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                    item.render(out, level + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                out.push_str(&"  ".repeat(level));
                out.push(']');
            }
            JValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                    escape_into(out, k);
                    out.push_str(": ");
                    v.render(out, level + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                out.push_str(&"  ".repeat(level));
                out.push('}');
            }
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JValue, String> {
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if let Some((i, c)) = p.chars.peek() {
        return Err(format!("trailing content at byte {i}: `{c}`"));
    }
    Ok(v)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected `{want}` at byte {i}, found `{c}`")),
            None => Err(format!("expected `{want}`, found end of input")),
        }
    }

    fn value(&mut self) -> Result<JValue, String> {
        match self.chars.peek().copied() {
            None => Err("unexpected end of input".to_string()),
            Some((_, '{')) => self.object(),
            Some((_, '[')) => self.array(),
            Some((_, '"')) => Ok(JValue::Str(self.string()?)),
            Some((_, 't')) => self.keyword("true", JValue::Bool(true)),
            Some((_, 'f')) => self.keyword("false", JValue::Bool(false)),
            Some((_, 'n')) => self.keyword("null", JValue::Null),
            Some((i, c)) if c == '-' || c.is_ascii_digit() => self.number(i),
            Some((i, c)) => Err(format!("unexpected `{c}` at byte {i}")),
        }
    }

    fn keyword(&mut self, word: &str, v: JValue) -> Result<JValue, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(v)
    }

    fn number(&mut self, start: usize) -> Result<JValue, String> {
        let mut end = self.text.len();
        while let Some((i, c)) = self.chars.peek().copied() {
            if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                self.chars.next();
            } else {
                end = i;
                break;
            }
        }
        let lit = &self.text[start..end];
        lit.parse::<f64>()
            .map(JValue::Num)
            .map_err(|_| format!("bad number literal `{lit}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".to_string()),
                Some((_, '"')) => return Ok(out),
                Some((i, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (j, c) = self
                                .chars
                                .next()
                                .ok_or("unterminated \\u escape".to_string())?;
                            let d = c
                                .to_digit(16)
                                .ok_or_else(|| format!("bad hex digit `{c}` at byte {j}"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u{code:04x} escape"))?,
                        );
                    }
                    Some((j, c)) => return Err(format!("bad escape `\\{c}` at byte {j}")),
                    None => return Err(format!("unterminated escape at byte {i}")),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn object(&mut self) -> Result<JValue, String> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, '}'))) {
            self.chars.next();
            return Ok(JValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => return Ok(JValue::Obj(pairs)),
                Some((i, c)) => return Err(format!("expected `,` or `}}` at byte {i}, got `{c}`")),
                None => return Err("unterminated object".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<JValue, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if matches!(self.chars.peek(), Some((_, ']'))) {
            self.chars.next();
            return Ok(JValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some((_, ',')) => continue,
                Some((_, ']')) => return Ok(JValue::Arr(items)),
                Some((i, c)) => return Err(format!("expected `,` or `]` at byte {i}, got `{c}`")),
                None => return Err("unterminated array".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JValue::Null);
        assert_eq!(parse(" true ").unwrap(), JValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JValue::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), JValue::Num(-1250.0));
        assert_eq!(parse(r#""a\nb\u0041""#).unwrap(), JValue::str("a\nbA"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&JValue::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn pretty_roundtrips() {
        let v = JValue::Obj(vec![
            ("name".to_string(), JValue::str("tune \"cache\"")),
            ("hit".to_string(), JValue::Bool(false)),
            ("score".to_string(), JValue::Num(17.25)),
            ("count".to_string(), JValue::Num(3.0)),
            (
                "items".to_string(),
                JValue::Arr(vec![JValue::Num(1.0), JValue::Null]),
            ),
            ("empty".to_string(), JValue::Obj(vec![])),
        ]);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(JValue::Num(3.0).pretty(), "3\n");
        assert_eq!(JValue::Num(3.5).pretty(), "3.5\n");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn reads_the_scenario_writer_dialect() {
        // The shape `em_scenarios::json::Json::pretty` emits.
        let doc = "{\n  \"job\": 0,\n  \"energy\": 1.25e-3,\n  \"error\": null\n}\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("job").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("energy").unwrap().as_f64(), Some(0.00125));
        assert_eq!(v.get("error"), Some(&JValue::Null));
    }
}
