//! Property tests for the tuner's pruning stage and determinism.
//!
//! The pruning soundness property re-derives candidate feasibility from
//! Eq. 11 first principles (`groups x cache_block_bytes` against the
//! window over the usable L3) rather than through `cache_fit`, so a
//! regression in either `prune` or `total_block_bytes` breaks the test
//! instead of cancelling out.

use autotune::{autotune, cache_fit, CacheWindow, Candidate, ModelEvaluator, SearchSpace};
use em_field::GridDims;
use perf_models::{cache_block_bytes, MachineSpec};
use proptest::prelude::*;

const HSW: MachineSpec = MachineSpec::HASWELL_E5_2699_V3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `prune` is a partition, and it never discards a candidate whose
    /// cache-block footprint fits the window (nor keeps one that does
    /// not) — over random grids, thread counts, window bounds and L3
    /// capacities.
    #[test]
    fn prune_keeps_exactly_the_window_fitting_candidates(
        nx in 8usize..256,
        ny in 8usize..64,
        nz in 8usize..64,
        threads in 1usize..9,
        lo in 0.0f64..0.5,
        span in 0.05f64..1.5,
        l3_mib in 2usize..64,
    ) {
        let dims = GridDims::new(nx, ny, nz);
        let machine = MachineSpec {
            l3_bytes: l3_mib * 1024 * 1024,
            ..HSW
        };
        let window = CacheWindow { lo_frac: lo, hi_frac: lo + span };
        let cands = SearchSpace::default_for(threads).candidates(dims, threads);
        prop_assert!(!cands.is_empty());
        let (kept, pruned) = autotune::prune::prune(cands.clone(), dims, &machine, window);
        prop_assert_eq!(kept.len() + pruned, cands.len());

        // Ground truth straight from Eq. 11.
        let usable = machine.usable_l3();
        let fits = |c: &Candidate| {
            let total = c.groups as f64 * cache_block_bytes(dims.nx, c.dw, c.bz);
            total >= window.lo_frac * usable && total <= window.hi_frac * usable
        };
        for c in &cands {
            let in_kept = kept.contains(c);
            prop_assert_eq!(
                in_kept,
                fits(c),
                "candidate {:?} (fits={}) mishandled by prune",
                c,
                fits(c)
            );
            prop_assert_eq!(cache_fit(c, dims, &machine, window), fits(c));
        }
        // Pruning preserves order among the kept candidates (the tuner's
        // deterministic tie-breaking depends on it).
        let expected: Vec<Candidate> = cands.iter().copied().filter(fits).collect();
        prop_assert_eq!(kept, expected);
    }

    /// For a fixed `MachineSpec`, `autotune` is a pure function of its
    /// inputs: same winner, same score, same evaluation trace.
    #[test]
    fn autotune_is_deterministic_for_a_fixed_machine(
        nx in 8usize..128,
        nyz in 8usize..48,
        threads in 1usize..7,
    ) {
        let dims = GridDims::new(nx, nyz, nyz);
        let space = SearchSpace::default_for(threads);
        let run = || {
            let mut ev = ModelEvaluator {
                machine: HSW,
                dims,
                threads,
            };
            autotune(&space, dims, &HSW, threads, CacheWindow::default(), &mut ev)
                .expect("non-empty spaces always tune")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.best, b.best, "winner must be deterministic");
        prop_assert_eq!(
            a.best_score.to_bits(),
            b.best_score.to_bits(),
            "score must be bit-identical"
        );
        prop_assert_eq!(a.pruned, b.pruned);
        prop_assert_eq!(a.scores.len(), b.scores.len());
        for ((ca, sa), (cb, sb)) in a.scores.iter().zip(&b.scores) {
            prop_assert_eq!(ca, cb);
            prop_assert_eq!(sa.to_bits(), sb.to_bits());
        }
        // The winner is the argmax of its own trace and runs on the grid.
        let max = a
            .scores
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(max.to_bits(), a.best_score.to_bits());
        prop_assert!(a.best.validate(dims).is_ok());
        prop_assert_eq!(a.best.threads(), threads);
    }
}
