//! Quickstart: run the THIIM stencil through every engine and verify the
//! central property of the reproduction — MWD temporal blocking is
//! bit-identical to the naive sweep while touching far less memory.
//!
//!     cargo run --release --example quickstart

use thiim_mwd::field::{GridDims, State};
use thiim_mwd::kernels::{run_naive, step_spatial_mt, SpatialConfig};
use thiim_mwd::memsim::simulate_mwd_engine;
use thiim_mwd::models::MachineSpec;
use thiim_mwd::mwd::{run_mwd, MwdConfig, TgShape};

fn main() {
    let dims = GridDims::cubic(48);
    let steps = 8;
    println!("THIIM stencil on a {dims} grid, {steps} time steps");
    println!(
        "state: 40 double-complex arrays = {} MB\n",
        dims.state_bytes() / 1_000_000
    );

    // Seed one problem, run it through three engines.
    let mut reference = State::zeros(dims);
    reference.fields.fill_deterministic(42);
    reference.coeffs.fill_deterministic(43);
    let mut spatial = reference.clone();
    let mut mwd = reference.clone();

    let t0 = std::time::Instant::now();
    run_naive(&mut reference, steps);
    let t_naive = t0.elapsed();

    let t0 = std::time::Instant::now();
    for _ in 0..steps {
        step_spatial_mt(&mut spatial, SpatialConfig::new(8, 48), 2);
    }
    let t_spatial = t0.elapsed();

    let cfg = MwdConfig {
        dw: 8,
        bz: 4,
        tg: TgShape { x: 1, z: 2, c: 1 },
        groups: 1,
    };
    let t0 = std::time::Instant::now();
    let stats = run_mwd(&mut mwd, &cfg, steps).expect("valid MWD config");
    let t_mwd = t0.elapsed();

    println!("naive sweep      : {t_naive:>10.2?}");
    println!("spatial blocking : {t_spatial:>10.2?}  (2 threads)");
    println!(
        "MWD              : {t_mwd:>10.2?}  (Dw={}, BZ={}, TG={}x{}x{}, {} tiles, {} barriers)",
        cfg.dw, cfg.bz, cfg.tg.x, cfg.tg.z, cfg.tg.c, stats.tiles, stats.barriers
    );

    assert!(
        reference.fields.bit_eq(&spatial.fields),
        "spatial must be bit-identical"
    );
    assert!(
        reference.fields.bit_eq(&mwd.fields),
        "MWD must be bit-identical"
    );
    println!("\nall three engines produced BIT-IDENTICAL fields");

    // What the paper is really about: memory traffic. Replay the same
    // schedules through the simulated 18-core Haswell.
    let hsw = MachineSpec::HASWELL_E5_2699_V3;
    let one_wd = simulate_mwd_engine(&hsw, dims, steps, 4, 1, 18, 18);
    let shared = simulate_mwd_engine(&hsw, dims, steps, 8, 1, 1, 18);
    println!("\nsimulated Haswell, 18 threads:");
    println!(
        "  1WD (18 private cache blocks): {:6.1} bytes/LUP",
        one_wd.code_balance
    );
    println!(
        "  18WD (1 shared cache block)  : {:6.1} bytes/LUP",
        shared.code_balance
    );
    println!("  (paper Sec. III: spatial blocking needs 1216 bytes/LUP)");
}
