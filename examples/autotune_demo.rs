//! The auto-tuner end to end (paper Sec. II-A): enumerate the
//! (Dw, BZ, thread-group-shape) space, prune with the Eq. 11 cache-block
//! model, and score the survivors — first with the closed-form model on
//! the simulated 18-core Haswell, then with wall-clock probes on this
//! host.
//!
//!     cargo run --release --example autotune_demo

use thiim_mwd::field::GridDims;
use thiim_mwd::models::{cache_block_bytes, MachineSpec};
use thiim_mwd::tuner::{autotune, CacheWindow, ModelEvaluator, NativeEvaluator, SearchSpace};

fn main() {
    let hsw = MachineSpec::HASWELL_E5_2699_V3;

    // --- paper-scale tuning on the simulated Haswell ------------------
    let dims = GridDims::cubic(480);
    let threads = 18;
    let space = SearchSpace::default_for(threads);
    let n_total = space.candidates(dims, threads).len();
    let mut ev = ModelEvaluator {
        machine: hsw,
        dims,
        threads,
    };
    let result = autotune(&space, dims, &hsw, threads, CacheWindow::default(), &mut ev)
        .expect("tuning succeeds");

    println!("=== simulated Haswell (18 threads, 480^3) ===");
    println!(
        "candidates: {n_total} total, {} pruned by the Eq. 11 cache model",
        result.pruned
    );
    let b = result.best;
    println!(
        "best: Dw={} BZ={} TG={}x{}x{} ({} groups) -> {:.1} MLUP/s (model)",
        b.dw, b.bz, b.tg.x, b.tg.z, b.tg.c, b.groups, result.best_score
    );
    println!(
        "block footprint: {:.1} MiB of {:.1} MiB usable L3",
        b.groups as f64 * cache_block_bytes(dims.nx, b.dw, b.bz) / (1024.0 * 1024.0),
        hsw.usable_l3() / (1024.0 * 1024.0)
    );
    println!("\ntop five:");
    let mut scored = result.scores.clone();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (cand, score) in scored.iter().take(5) {
        println!(
            "  Dw={:<3} BZ={:<2} TG={}x{}x{} groups={:<2} -> {score:.1} MLUP/s",
            cand.dw, cand.bz, cand.tg.x, cand.tg.z, cand.tg.c, cand.groups
        );
    }

    // --- native wall-clock tuning on this machine ---------------------
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let dims = GridDims::cubic(32);
    println!("\n=== native probes ({host_threads} threads, {dims}) ===");
    let mut space = SearchSpace::default_for(host_threads);
    space.dw = vec![4, 8];
    space.bz = vec![1, 2, 4];
    let mut ev = NativeEvaluator::new(dims, 2);
    let result = autotune(
        &space,
        dims,
        &hsw,
        host_threads,
        CacheWindow {
            lo_frac: 0.0,
            hi_frac: 1e9,
        },
        &mut ev,
    )
    .expect("native tuning succeeds");
    let b = result.best;
    println!(
        "best: Dw={} BZ={} TG={}x{}x{} ({} groups) -> {:.1} MLUP/s measured",
        b.dw, b.bz, b.tg.x, b.tg.z, b.tg.c, b.groups, result.best_score
    );
}
