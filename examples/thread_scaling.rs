//! Native analogue of the paper's Fig. 6: wall-clock thread scaling of
//! spatial blocking vs 1WD vs MWD *on this host* (the paper-scale version
//! on the simulated Haswell is `cargo run -p em-bench --bin figures`).
//!
//!     cargo run --release --example thread_scaling

use thiim_mwd::field::{GridDims, State};
use thiim_mwd::kernels::{step_spatial_mt, SpatialConfig};
use thiim_mwd::mwd::{run_mwd, MwdConfig, TgShape};

fn mlups(dims: GridDims, steps: usize, secs: f64) -> f64 {
    (dims.cells() * steps) as f64 / secs / 1e6
}

fn main() {
    let dims = GridDims::cubic(64);
    let steps = 4;
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    println!("native thread scaling, {dims} grid, {steps} steps/measurement");
    println!("host parallelism: {host}\n");

    let mut proto = State::zeros(dims);
    proto.fields.fill_deterministic(7);
    proto.coeffs.fill_deterministic(8);

    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "threads", "spatial", "1WD", "MWD(shared)"
    );
    for threads in 1..=host.min(4) {
        // Spatial baseline.
        let mut s = proto.clone();
        let t0 = std::time::Instant::now();
        for _ in 0..steps {
            step_spatial_mt(&mut s, SpatialConfig::new(8, 16), threads);
        }
        let sp = mlups(dims, steps, t0.elapsed().as_secs_f64());

        // 1WD: private tiles per thread.
        let mut s = proto.clone();
        let cfg = MwdConfig::one_wd(8, 2, threads);
        let t0 = std::time::Instant::now();
        run_mwd(&mut s, &cfg, steps).expect("1WD runs");
        let one = mlups(dims, steps, t0.elapsed().as_secs_f64());

        // MWD: one shared cache block, component-parallel inside.
        let tg = match threads {
            1 => TgShape { x: 1, z: 1, c: 1 },
            2 => TgShape { x: 1, z: 1, c: 2 },
            3 => TgShape { x: 1, z: 1, c: 3 },
            _ => TgShape { x: 2, z: 1, c: 2 },
        };
        let mut s = proto.clone();
        let cfg = MwdConfig {
            dw: 8,
            bz: 2,
            tg,
            groups: 1,
        };
        let t0 = std::time::Instant::now();
        run_mwd(&mut s, &cfg, steps).expect("MWD runs");
        let mw = mlups(dims, steps, t0.elapsed().as_secs_f64());

        println!("{threads:>8} {sp:>10.1} MLUP/s {one:>9.1} MLUP/s {mw:>9.1} MLUP/s");
    }

    println!("\nNote: this 2-core host cannot reproduce the 18-core separation;");
    println!("run `cargo run -p em-bench --release --bin figures -- fig6` for the");
    println!("paper-scale comparison on the simulated Haswell.");
}
