//! The paper's motivating application (Fig. 1): optical simulation of a
//! tandem thin-film solar cell — glass superstrate, front TCO, a-Si:H and
//! uc-Si:H junctions with textured interfaces, back TCO, and a silver
//! reflector with embedded SiO2 nanoparticles. The silver's negative
//! permittivity exercises the THIIM back iteration (Eq. 5).
//!
//!     cargo run --release --example solar_cell

use thiim_mwd::field::GridDims;
use thiim_mwd::solver::analysis;
use thiim_mwd::solver::{Engine, PmlSpec, Scene, SolverConfig, SourceSpec, ThiimSolver};

fn main() {
    let (nx, ny, nz) = (24, 24, 72);
    let dims = GridDims::new(nx, ny, nz);
    let scene = Scene::tandem_solar_cell(nx, ny, nz);

    println!("tandem thin-film solar cell on a {dims} grid");
    println!("layers (bottom-up): Ag | TCO | uc-Si:H | a-Si:H | TCO | glass | vacuum");
    println!(
        "{} SiO2 nanoparticles at the back reflector\n",
        scene.spheres.len()
    );

    // Sweep three vacuum wavelengths across the visible spectrum. The
    // production workflow runs 80-160 of these per cell design (paper
    // Sec. VI) — exactly why the kernel's throughput matters.
    for (lambda_nm, lambda_cells) in [(450.0, 9.0), (550.0, 11.0), (650.0, 13.0)] {
        let mut cfg = SolverConfig::new(dims, scene.clone(), lambda_cells, lambda_nm);
        cfg.pml = Some(PmlSpec::new(8));
        cfg.source = Some(SourceSpec::x_polarized(nz - 12, 1.0));
        let mut solver = ThiimSolver::new(cfg);

        let report = solver
            .run_to_convergence(&Engine::NaivePeriodicXY, 2e-2, 60)
            .expect("engine runs");

        // Absorption split by region (cell fractions of the stack).
        let z = |f: f64| (f * nz as f64) as usize;
        let in_asi = analysis::absorption_in_slab(
            solver.fields(),
            &scene,
            lambda_nm,
            solver.omega,
            z(0.48),
            z(0.62),
        );
        let in_ucsi = analysis::absorption_in_slab(
            solver.fields(),
            &scene,
            lambda_nm,
            solver.omega,
            z(0.20),
            z(0.48),
        );
        let in_ag = analysis::absorption_in_slab(
            solver.fields(),
            &scene,
            lambda_nm,
            solver.omega,
            0,
            z(0.12),
        );
        let total = in_asi + in_ucsi + in_ag;

        println!(
            "lambda {:>3.0} nm | {} periods ({} steps, converged: {}) | back-iter cells: {}",
            lambda_nm, report.periods, report.steps, report.converged, solver.back_iteration_cells
        );
        if total > 0.0 {
            println!(
                "  absorption share: a-Si {:4.1}%  uc-Si {:4.1}%  Ag (loss) {:4.1}%",
                100.0 * in_asi / total,
                100.0 * in_ucsi / total,
                100.0 * in_ag / total
            );
        }
    }

    println!("\nBlue light should die in the top a-Si junction; red reaches uc-Si.");
}
