//! The paper's motivating application (Fig. 1): optical simulation of a
//! tandem thin-film solar cell. Since the scenario subsystem landed this
//! example is a thin wrapper over the built-in `solar-cell` scenario —
//! the grid, stack, sweep and absorption accounting all live in
//! `em_scenarios::library`, and the same workload runs from the CLI as
//! `mwd run solar-cell`.
//!
//!     cargo run --release --example solar_cell

use thiim_mwd::scenarios::library;
use thiim_mwd::scenarios::runner::{run_batch, BatchOptions};

fn main() {
    let spec = library::solar_cell();
    let scene = spec.build_scene().expect("builtin scene builds");

    println!("tandem thin-film solar cell on a {} grid", spec.dims());
    println!("layers (bottom-up): Ag | TCO | uc-Si:H | a-Si:H | TCO | glass | vacuum");
    println!(
        "{} SiO2 nanoparticles at the back reflector\n",
        scene.spheres.len()
    );

    // The sweep in the spec covers three visible wavelengths; the
    // production workflow runs 80-160 of these per cell design (paper
    // Sec. VI) — exactly why the kernel's throughput matters.
    let report = run_batch(
        std::slice::from_ref(&spec),
        &BatchOptions {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("batch runs");

    for o in &report.outcomes {
        println!(
            "lambda {:>3.0} nm | {} periods ({} steps, converged: {}) | back-iter cells: {}",
            o.lambda_nm, o.periods, o.steps, o.converged, o.back_iteration_cells
        );
        let total: f64 = o.absorption.iter().map(|(_, a)| a).sum();
        if total > 0.0 {
            let share = |name: &str| {
                o.absorption
                    .iter()
                    .find(|(n, _)| n == name)
                    .map_or(0.0, |(_, a)| 100.0 * a / total)
            };
            println!(
                "  absorption share: a-Si {:4.1}%  uc-Si {:4.1}%  Ag (loss) {:4.1}%",
                share("a-Si"),
                share("uc-Si"),
                share("Ag")
            );
        }
    }

    println!("\nBlue light should die in the top a-Si junction; red reaches uc-Si.");
}
