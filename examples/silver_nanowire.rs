//! Plasmonics around silver nano-structures (paper ref. [10]): a silver
//! cylinder illuminated by a plane wave. Demonstrates why THIIM exists:
//! with `Re(eps) < 0`, the regular FDFD iteration diverges and the back
//! iteration (Eq. 5) converges — shown side by side.
//!
//! The stable half is a thin wrapper over the built-in `silver-nanowire`
//! scenario (also runnable as `mwd run silver-nanowire`); the divergence
//! demo keeps using the raw coefficient API, since forcing the unstable
//! forward iteration is exactly what scenarios refuse to describe.
//!
//!     cargo run --release --example silver_nanowire

use thiim_mwd::field::State;
use thiim_mwd::scenarios::library;
use thiim_mwd::solver::coeffs::{build_coefficients, CoeffOptions};
use thiim_mwd::solver::Material;

fn main() {
    let spec = library::silver_nanowire();
    let jobs = spec.jobs();
    let job = &jobs[0];

    println!(
        "silver nanowire in vacuum, {} grid, lambda = {} nm",
        spec.dims(),
        job.lambda_nm
    );
    let (re, im) = Material::silver().eps(job.lambda_nm);
    println!("Ag permittivity: {re:.1} + {im:.2}i  (negative => back iteration)\n");

    // THIIM back iteration: stable.
    let mut solver = spec.build_solver(job).expect("builtin scenario builds");
    println!("back-iteration cells: {}", solver.back_iteration_cells);
    let engine = spec.engine().expect("builtin engine is valid");
    for period in 1..=8 {
        solver
            .step_n(&engine, solver.steps_per_period())
            .expect("run");
        println!(
            "  period {period}: field energy = {:.4e} (bounded)",
            solver.state.fields.energy()
        );
    }

    // Regular iteration on the same problem: diverges.
    let scene = spec.build_scene().expect("scene builds");
    let mut state = State::zeros(spec.dims());
    let mut opt = CoeffOptions::new(job.lambda_cells, job.lambda_nm);
    opt.pml = solver.config.pml;
    opt.source = solver.config.source;
    opt.force_forward_iteration = true;
    build_coefficients(&mut state, &scene, &opt);
    let spp = solver.steps_per_period();
    println!("\nregular (forward) iteration on the same silver:");
    for period in 1..=4 {
        for _ in 0..spp {
            thiim_mwd::kernels::boundary::step_naive_with_boundary(
                &mut state,
                thiim_mwd::kernels::boundary::Boundary::PeriodicXY,
            );
        }
        let e = state.fields.energy();
        println!("  period {period}: field energy = {e:.4e}");
        if !e.is_finite() || e > 1e12 {
            println!("  -> diverged, as the theory predicts (Sec. I / ref [2])");
            break;
        }
    }
}
