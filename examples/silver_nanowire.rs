//! Plasmonics around silver nano-structures (paper ref. [10]): a silver
//! cylinder illuminated by a plane wave. Demonstrates why THIIM exists:
//! with `Re(eps) < 0`, the regular FDFD iteration diverges and the back
//! iteration (Eq. 5) converges — shown side by side.
//!
//!     cargo run --release --example silver_nanowire

use thiim_mwd::field::{GridDims, State};
use thiim_mwd::solver::coeffs::{build_coefficients, CoeffOptions};
use thiim_mwd::solver::{
    Engine, Material, PmlSpec, Scene, SolverConfig, SourceSpec, Sphere, ThiimSolver,
};

fn make_scene(n: usize) -> Scene {
    let mut scene = Scene::vacuum();
    let ag = scene.add_material(Material::silver());
    // A "wire": chain of overlapping silver spheres along y mid-plane.
    let r = n as f64 * 0.12;
    for j in 0..n {
        scene.spheres.push(Sphere {
            center: [n as f64 / 2.0, j as f64 + 0.5, n as f64 * 0.45],
            radius: r,
            material: ag,
        });
    }
    scene
}

fn main() {
    let n = 24;
    let dims = GridDims::new(n, n, 2 * n);
    let scene = make_scene(n);
    let lambda_nm = 550.0;
    let lambda_cells = 10.0;

    let mut cfg = SolverConfig::new(dims, scene.clone(), lambda_cells, lambda_nm);
    cfg.pml = Some(PmlSpec::new(6));
    cfg.source = Some(SourceSpec::x_polarized(2 * n - 10, 1.0));

    println!("silver nanowire in vacuum, {dims} grid, lambda = {lambda_nm} nm");
    let (re, im) = Material::silver().eps(lambda_nm);
    println!("Ag permittivity: {re:.1} + {im:.2}i  (negative => back iteration)\n");

    // THIIM back iteration: stable.
    let mut solver = ThiimSolver::new(cfg.clone());
    println!("back-iteration cells: {}", solver.back_iteration_cells);
    for period in 1..=8 {
        solver
            .step_n(&Engine::NaivePeriodicXY, solver.steps_per_period())
            .expect("run");
        println!(
            "  period {period}: field energy = {:.4e} (bounded)",
            solver.state.fields.energy()
        );
    }

    // Regular iteration on the same problem: diverges.
    let mut state = State::zeros(dims);
    let mut opt = CoeffOptions::new(lambda_cells, lambda_nm);
    opt.pml = cfg.pml;
    opt.source = cfg.source;
    opt.force_forward_iteration = true;
    build_coefficients(&mut state, &scene, &opt);
    let spp = solver.steps_per_period();
    println!("\nregular (forward) iteration on the same silver:");
    for period in 1..=4 {
        for _ in 0..spp {
            thiim_mwd::kernels::boundary::step_naive_with_boundary(
                &mut state,
                thiim_mwd::kernels::boundary::Boundary::PeriodicXY,
            );
        }
        let e = state.fields.energy();
        println!("  period {period}: field energy = {e:.4e}");
        if !e.is_finite() || e > 1e12 {
            println!("  -> diverged, as the theory predicts (Sec. I / ref [2])");
            break;
        }
    }
}
