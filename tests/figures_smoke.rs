//! Smoke-level regeneration of every figure plus shape assertions against
//! the paper's headline claims. The full regeneration is
//! `cargo run -p em-bench --release --bin figures` (see EXPERIMENTS.md).

use em_bench::{fig5, fig6, fig7, fig8, paper, sect3, validate, Scale};

#[test]
fn sect3_numbers_are_the_papers() {
    let s = sect3();
    assert_eq!(s.bc_naive, 1344.0);
    assert_eq!(s.bc_spatial, 1216.0);
    assert!((s.pmem_spatial - 41.0).abs() < 0.5);
    assert_eq!(s.cs_example_per_nx, 14912.0);
}

#[test]
fn fig5_measured_tracks_model_until_cache_overflows() {
    let pts = fig5(Scale::Tiny);
    let usable_mib = 22.5;
    // Within-cache points: measured within a factor ~2 of Eq. 12 (cold
    // start inflates small runs); far-over-cache points diverge upward.
    for p in &pts {
        assert!(p.bc_measured.is_finite() && p.bc_measured > 0.0);
        if p.cs_mib < 0.4 * usable_mib {
            assert!(p.bc_measured < 2.2 * p.bc_model + 60.0, "{p:?}");
        }
    }
    let over: Vec<_> = pts.iter().filter(|p| p.cs_mib > 2.0 * usable_mib).collect();
    assert!(!over.is_empty());
    for p in over {
        assert!(p.bc_measured > 1.5 * p.bc_model, "no divergence: {p:?}");
    }
}

#[test]
fn fig6_reproduces_the_thread_scaling_shapes() {
    let pts = fig6(Scale::Tiny);
    let at = |t: usize| pts.iter().find(|p| p.threads == t).expect("point");
    let (p1, p6, p18) = (at(1), at(6), at(18));

    // Spatial blocking saturates the memory interface by ~6 threads.
    assert!(
        p6.spatial.memory_bound,
        "spatial must be memory-bound at 6 threads"
    );
    assert!((p18.spatial.mlups - p6.spatial.mlups).abs() < 0.15 * p6.spatial.mlups);

    // MWD keeps scaling to the full chip and wins clearly.
    assert!(
        p18.mwd.mlups > 2.2 * p18.spatial.mlups,
        "MWD speedup too small"
    );
    assert!(
        p18.mwd.mlups > p18.one_wd.mlups,
        "sharing must beat private blocks"
    );
    assert!(
        p18.mwd.mlups > 2.0 * p6.mwd.mlups * 0.9,
        "MWD must keep scaling"
    );

    // MWD stays decoupled: bandwidth use below the saturation line.
    assert!(
        p18.mwd.mem_gbs < (1.0 - paper::CLAIMS.bandwidth_saving_lo) * 50.0 * 1.05,
        "MWD bandwidth saving < 38%: {} GB/s",
        p18.mwd.mem_gbs
    );

    // Tuned diamonds: 1WD shrinks under cache pressure, MWD stays large.
    assert!(
        p18.dw_1wd < p1.dw_1wd,
        "1WD diamond must shrink with threads"
    );
    assert!(
        p18.dw_mwd >= p18.dw_1wd,
        "MWD affords at least 1WD's diamond"
    );
}

#[test]
fn fig7_reproduces_grid_scaling_shapes() {
    let pts = fig7(Scale::Tiny);
    for p in &pts {
        assert!(
            p.mwd.mlups >= p.one_wd.mlups * 0.95,
            "MWD >= 1WD at N={}",
            p.n
        );
        assert!(p.mwd.mlups > p.spatial.mlups, "MWD > spatial at N={}", p.n);
    }
    // At the largest grid the speedup lands in (or above) the 3x-4x band
    // scaled for the simulated substrate.
    let last = pts.last().unwrap();
    let speedup = last.mwd.mlups / last.spatial.mlups;
    assert!(speedup > 2.2, "speedup {speedup} at N={}", last.n);
    // MWD stays decoupled across the sweep.
    assert!(pts.iter().all(|p| !p.mwd.memory_bound));
}

#[test]
fn fig8_larger_thread_groups_cut_traffic() {
    let pts = fig8(Scale::Tiny);
    let ns: std::collections::BTreeSet<usize> = pts.iter().map(|p| p.n).collect();
    for n in ns {
        let at = |tg: usize| {
            pts.iter()
                .find(|p| p.n == n && p.tg_size == tg)
                .expect("point")
        };
        let (wd1, wd18) = (at(1), at(18));
        assert!(
            wd18.result.code_balance <= wd1.result.code_balance,
            "N={n}: 18WD B/LUP {} vs 1WD {}",
            wd18.result.code_balance,
            wd1.result.code_balance
        );
        assert!(
            wd18.dw >= wd1.dw,
            "N={n}: sharing must afford at least as large diamonds"
        );
        // 18WD draws less than the saturation bandwidth (the >=38% claim).
        assert!(wd18.result.mem_gbs < 0.62 * 50.0 * 1.05, "N={n}");
    }
}

#[test]
fn eq12_validation_stays_in_band() {
    for p in validate(Scale::Tiny) {
        assert!(p.ratio > 0.6 && p.ratio < 1.8, "{p:?}");
    }
}
