//! Property tests on the core data structures: diamond tessellation,
//! schedule validity under adversarial orders, work splitting, and the
//! cache-block model against exact tile footprints.

use proptest::prelude::*;
use thiim_mwd::field::FieldKind;
use thiim_mwd::models::cache_block_bytes;
use thiim_mwd::mwd::{
    diamond_rows, split_range, DiamondWidth, ReadyQueue, TgShape, TilePlan, WavefrontSpec,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every (y, t) cell of both fields is updated exactly once, and the
    /// dependency-ordered schedule passes exact-level validation, for
    /// arbitrary domain extents and diamond widths.
    #[test]
    fn tessellation_covers_exactly_once(
        ny in 1usize..40,
        nt in 1usize..24,
        dw_half in 1usize..9,
    ) {
        let dw = DiamondWidth::new(2 * dw_half).unwrap();
        let plan = TilePlan::build(dw, ny, nt);
        prop_assert_eq!(plan.total_half_updates(), 2 * ny * nt);
        plan.validate().map_err(TestCaseError::fail)?;
    }

    /// Scheduling order among ready tiles is free: random ready-set picks
    /// must still satisfy every exact-level read.
    #[test]
    fn random_schedules_are_valid(
        ny in 1usize..24,
        nt in 1usize..16,
        dw_half in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let dw = DiamondWidth::new(2 * dw_half).unwrap();
        let plan = TilePlan::build(dw, ny, nt);
        let mut state = seed | 1;
        plan.validate_with_order(|ready| {
            if ready.is_empty() {
                return None;
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Some(ready[(state >> 33) as usize % ready.len()])
        })
        .map_err(TestCaseError::fail)?;
    }

    /// The wavefront windows of every lag partition [0, nz) exactly.
    #[test]
    fn wavefront_windows_partition_z(
        nz in 1usize..60,
        bz in 1usize..12,
        lag in 0usize..16,
    ) {
        let wf = WavefrontSpec::new(bz).unwrap();
        let mut covered = vec![0u8; nz];
        for p in wf.positions(nz, lag) {
            for z in wf.window(p, lag, nz) {
                covered[z] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// split_range is always a balanced partition.
    #[test]
    fn split_range_partitions(
        start in 0usize..50,
        len in 0usize..200,
        parts in 1usize..17,
    ) {
        let range = start..start + len;
        let mut covered = vec![0u8; len];
        let mut sizes = vec![];
        for i in 0..parts {
            let r = split_range(range.clone(), parts, i);
            sizes.push(r.len());
            for j in r {
                covered[j - start] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    /// Eq. 11 equals the exact row count of the canonical tile footprint:
    /// 40 arrays over the (y,z) wavefront footprint plus the 12-component
    /// halo ring, all scaled by Nx.
    #[test]
    fn eq11_matches_combinatorial_footprint(
        dw_half in 1usize..9,
        bz in 1usize..10,
    ) {
        let dw = 2 * dw_half;
        // Footprint area in the (y, z-offset) plane: each level occupies
        // its y-interval over BZ z cells, shifted by the lag; distinct
        // (y, z) pairs count once per *array*, i.e. field + coefficients
        // = 40 copies, plus neighbor halo of the 12 field components.
        let rows = diamond_rows(DiamondWidth::new(dw).unwrap(), 0, 0);
        // E and H rows per level share y-extent with the H row one wider;
        // the model's footprint is Dw^2/2 + Dw*(BZ-1) distinct y*z cells.
        let mut cells = std::collections::HashSet::new();
        for row in &rows {
            if row.kind != thiim_mwd::field::FieldKind::H { continue; }
            for y in row.y_lo..=row.y_hi {
                for dz in 0..bz {
                    cells.insert((y, row.lag as i64 + dz as i64));
                }
            }
        }
        let area = cells.len() as f64;
        let model_area = (dw * dw) as f64 / 2.0 + (dw * (bz - 1)) as f64;
        prop_assert!((area - model_area).abs() <= (dw as f64),
            "footprint {} vs model {}", area, model_area);
        // And the full Eq. 11 stays within one halo ring of
        // 40*area + 12*(Dw + Ww).
        let ww = dw + bz - 1;
        let model = cache_block_bytes(1, dw, bz);
        let reconstructed = 16.0 * (40.0 * model_area + 12.0 * (dw + ww) as f64);
        prop_assert!((model - reconstructed).abs() < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural contract of the tessellation, for randomized diamond
    /// widths, grid/time extents, and thread-group shapes:
    ///
    /// 1. every (y, t) cell of *each* field lies in exactly one clipped
    ///    row of exactly one tile (exact partition, no gaps, no overlap);
    /// 2. the dependency DAG really is two-parent (`parents` matches the
    ///    in-degrees implied by `dependents`, and never exceeds 2) and is
    ///    acyclic: a Kahn traversal with a seeded random frontier pick
    ///    consumes every tile;
    /// 3. a [`ReadyQueue`] drained by as many concurrent workers as the
    ///    drawn thread-group shape holds pops each tile exactly once and
    ///    terminates — scheduling freedom is independent of group shape.
    #[test]
    fn tessellation_partitions_and_dag_is_acyclic(
        ny in 1usize..48,
        nt in 1usize..20,
        dw_half in 1usize..10,
        tgx in 1usize..4,
        tgz in 1usize..4,
        tgc_idx in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let dw = DiamondWidth::new(2 * dw_half).unwrap();
        let plan = TilePlan::build(dw, ny, nt);

        // (1) Exact cover of the (y, t, field) update space.
        let mut cover = vec![[0u32; 2]; ny * nt];
        for tile in &plan.tiles {
            for row in &tile.rows {
                let f = (row.kind == FieldKind::H) as usize;
                prop_assert!(row.time >= 1 && row.time <= nt, "row time {} out of range", row.time);
                for y in row.y_range() {
                    prop_assert!(y < ny, "row y {y} out of range");
                    cover[(row.time - 1) * ny + y][f] += 1;
                }
            }
        }
        for (i, c) in cover.iter().enumerate() {
            prop_assert!(
                *c == [1, 1],
                "cell (y={}, t={}) covered {:?} times, want exactly once per field",
                i % ny, i / ny + 1, c
            );
        }

        // (2) Two-parent DAG + acyclicity via randomized Kahn traversal.
        let n = plan.tiles.len();
        let mut indeg = vec![0usize; n];
        for deps in &plan.dependents {
            for &d in deps {
                indeg[d] += 1;
            }
        }
        prop_assert_eq!(&indeg, &plan.parents);
        prop_assert!(indeg.iter().all(|&p| p <= 2), "more than two parents");
        let mut frontier: Vec<usize> = plan.roots();
        let mut remaining = indeg.clone();
        let mut rng = seed | 1;
        let mut processed = 0usize;
        while !frontier.is_empty() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = frontier.swap_remove((rng >> 33) as usize % frontier.len());
            processed += 1;
            for &d in &plan.dependents[t] {
                remaining[d] -= 1;
                if remaining[d] == 0 {
                    frontier.push(d);
                }
            }
        }
        prop_assert_eq!(processed, n, "dependency DAG has a cycle");

        // (3) Concurrent drain sized by the drawn thread-group shape.
        let tg = TgShape { x: tgx, z: tgz, c: [1usize, 2, 3, 6][tgc_idx] };
        tg.validate().map_err(TestCaseError::fail)?;
        let workers = tg.size().min(6);
        let queue = ReadyQueue::new(&plan);
        let pops: Vec<std::sync::atomic::AtomicUsize> =
            (0..n).map(|_| std::sync::atomic::AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    while let Some(t) = queue.pop() {
                        pops[t].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        queue.complete(t);
                    }
                });
            }
        });
        for (i, p) in pops.iter().enumerate() {
            let got = p.load(std::sync::atomic::Ordering::Relaxed);
            prop_assert_eq!(got, 1, "tile {} popped {} times with {} workers", i, got, workers);
        }
    }
}

#[test]
fn plan_scales_to_paper_sized_domains() {
    // 480 lines, 32 steps, Dw=16: build + validate stays fast and exact.
    let plan = TilePlan::build(DiamondWidth::new(16).unwrap(), 480, 32);
    assert_eq!(plan.total_half_updates(), 2 * 480 * 32);
    plan.validate().expect("paper-scale plan validates");
    assert!(plan.tiles.len() > 100);
}
