//! End-to-end tests of the `mwd` binary: spawn the built CLI in a temp
//! directory and assert exit codes, artifact presence, the JSON schema
//! of `batch_summary.json`, and the tune-cache round trip (the second
//! `tune` of the same key is a pure cache hit).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use thiim_mwd::scenarios::{builtin_names, ScenarioSpec};
use thiim_mwd::tuner::jsonio::{self, JValue};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mwd_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mwd(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mwd"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("mwd binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

/// First 12 hex digits of the spec content hash a spec file resolves
/// to — the suffix the batch runner embeds in artifact filenames.
fn hash12(spec_path: &Path) -> String {
    let spec = ScenarioSpec::from_toml_str(&std::fs::read_to_string(spec_path).unwrap()).unwrap();
    spec.content_hash()[..12].to_string()
}

/// A deterministic sub-second workload: one forced period on a 4x4x24
/// vacuum grid.
fn write_spec(dir: &Path, name: &str) -> PathBuf {
    let text = format!(
        r#"name = "{name}"
description = "cli integration workload"

[grid]
nx = 4
ny = 4
nz = 24

[physics]
lambda_cells = 8.0
lambda_nm = 550.0

[pml]
thickness = 4

[source]
z_plane = 18

[scene]
materials = ["vacuum"]
background = "vacuum"

[engine]
kind = "naive-periodic-xy"

[convergence]
tol = 1e-300
max_periods = 1
"#
    );
    let path = dir.join(format!("{name}.toml"));
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn list_covers_the_catalog_and_names_are_parseable() {
    let dir = temp_dir("list");
    let out = mwd(&dir, &["list"]);
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
    let text = stdout(&out);
    for name in builtin_names() {
        assert!(text.contains(&name), "`{name}` missing from:\n{text}");
    }

    let names = mwd(&dir, &["list", "--names"]);
    assert_eq!(exit_code(&names), 0);
    let listed: Vec<String> = stdout(&names).lines().map(str::to_string).collect();
    assert_eq!(listed, builtin_names());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn show_roundtrips_builtins_and_rejects_unknown_scenarios() {
    let dir = temp_dir("show");
    let out = mwd(&dir, &["show", "vacuum-slab"]);
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));
    let spec = ScenarioSpec::from_toml_str(&stdout(&out)).expect("shown TOML parses");
    assert_eq!(spec.name, "vacuum-slab");
    assert!(spec.validate().is_ok());

    let bad = mwd(&dir, &["show", "no-such-scenario"]);
    assert_eq!(exit_code(&bad), 2);
    assert!(
        stderr(&bad).contains("vacuum-slab"),
        "error must list the built-ins: {}",
        stderr(&bad)
    );

    let unknown_cmd = mwd(&dir, &["frobnicate"]);
    assert_eq!(exit_code(&unknown_cmd), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_writes_one_schema_conforming_artifact_per_job() {
    let dir = temp_dir("run");
    let spec = write_spec(&dir, "cli-smoke");
    let out_dir = dir.join("out");
    let out = mwd(
        &dir,
        &[
            "run",
            spec.to_str().unwrap(),
            "--quiet",
            "--out",
            out_dir.to_str().unwrap(),
        ],
    );
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));

    let artifact = out_dir.join(format!("00_cli-smoke_0550nm_{}.json", hash12(&spec)));
    assert!(artifact.is_file(), "missing {}", artifact.display());
    let v = jsonio::parse(&std::fs::read_to_string(&artifact).unwrap()).unwrap();
    assert_eq!(v.get("scenario").unwrap().as_str(), Some("cli-smoke"));
    assert_eq!(v.get("converged").unwrap().as_bool(), Some(false));
    assert_eq!(v.get("periods").unwrap().as_f64(), Some(1.0));
    assert_eq!(v.get("error"), Some(&JValue::Null));
    assert!(v.get("energy").unwrap().as_f64().unwrap() > 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_summary_has_the_documented_schema_in_job_order() {
    let dir = temp_dir("batch");
    let a = write_spec(&dir, "job-a");
    let b = write_spec(&dir, "job-b");
    let out_dir = dir.join("out");
    let out = mwd(
        &dir,
        &[
            "batch",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--workers",
            "2",
            "--quiet",
            "--out",
            out_dir.to_str().unwrap(),
        ],
    );
    assert_eq!(exit_code(&out), 0, "{}", stderr(&out));

    let summary =
        jsonio::parse(&std::fs::read_to_string(out_dir.join("batch_summary.json")).unwrap())
            .unwrap();
    let jobs = summary.as_arr().expect("summary is a JSON array");
    assert_eq!(jobs.len(), 2);
    for (i, (job, name)) in jobs.iter().zip(["job-a", "job-b"]).enumerate() {
        for key in [
            "job",
            "scenario",
            "sweep_index",
            "lambda_nm",
            "lambda_cells",
            "dims",
            "engine",
            "threads",
            "dry_run",
            "converged",
            "periods",
            "steps",
            "rel_change",
            "energy",
            "back_iteration_cells",
            "wall_secs",
            "error",
        ] {
            assert!(job.get(key).is_some(), "job #{i} missing `{key}`");
        }
        assert_eq!(job.get("job").unwrap().as_f64(), Some(i as f64));
        assert_eq!(job.get("scenario").unwrap().as_str(), Some(name));
        assert_eq!(job.get("dims").unwrap().as_str(), Some("4x4x24"));
        assert_eq!(job.get("error"), Some(&JValue::Null));
    }
    let csv = std::fs::read_to_string(out_dir.join("batch_summary.csv")).unwrap();
    assert_eq!(csv.lines().count(), 3, "header + one row per job");

    // A dry-run batch validates but writes no artifacts.
    let dry_dir = dir.join("dry");
    let dry = mwd(
        &dir,
        &[
            "batch",
            a.to_str().unwrap(),
            "--dry-run",
            "--quiet",
            "--out",
            dry_dir.to_str().unwrap(),
        ],
    );
    assert_eq!(exit_code(&dry), 0, "{}", stderr(&dry));
    assert!(stdout(&dry).contains("dry run"));
    assert!(!dry_dir.join("batch_summary.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tune_round_trip_second_invocation_is_a_pure_cache_hit() {
    let dir = temp_dir("tune");
    let spec = write_spec(&dir, "tune-me");
    let cache = dir.join("tune_cache.json");
    let base = [
        "tune",
        spec.to_str().unwrap(),
        "--cache",
        cache.to_str().unwrap(),
        "--threads",
        "2",
        "--refine",
        "0",
    ];

    let first = mwd(&dir, &base);
    assert_eq!(exit_code(&first), 0, "{}", stderr(&first));
    assert!(
        stdout(&first).contains("1 miss(es)"),
        "cold cache must miss:\n{}",
        stdout(&first)
    );
    assert!(cache.is_file());
    let body = std::fs::read_to_string(&cache).unwrap();
    let doc = jsonio::parse(&body).unwrap();
    let entries = doc.get("entries").unwrap().as_arr().unwrap();
    assert_eq!(entries.len(), 1);
    let config = entries[0].get("config").unwrap().as_str().unwrap();
    assert!(
        mwd_core::MwdConfig::from_compact(config).is_ok(),
        "stored config `{config}` must parse"
    );
    assert_eq!(entries[0].get("threads").unwrap().as_f64(), Some(2.0));

    // Second invocation: pure hit, cache file untouched byte for byte.
    let second = mwd(&dir, &base);
    assert_eq!(exit_code(&second), 0, "{}", stderr(&second));
    assert!(
        stdout(&second).contains("1 cache hit(s), 0 miss(es), 0 native probe(s)"),
        "second tune must be a pure cache hit:\n{}",
        stdout(&second)
    );
    assert_eq!(std::fs::read_to_string(&cache).unwrap(), body);

    // Dry run reports the hit without rewriting anything.
    let dry = mwd(
        &dir,
        &[
            "tune",
            spec.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
            "--threads",
            "2",
            "--dry-run",
        ],
    );
    assert_eq!(exit_code(&dry), 0, "{}", stderr(&dry));
    assert!(stdout(&dry).contains("hit"), "{}", stdout(&dry));
    assert_eq!(std::fs::read_to_string(&cache).unwrap(), body);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_with_tune_records_provenance_in_the_artifact() {
    let dir = temp_dir("run_tune");
    let spec = write_spec(&dir, "tuned-run");
    let cache = dir.join("tc.json");
    let run = |out: &str| {
        mwd(
            &dir,
            &[
                "run",
                spec.to_str().unwrap(),
                "--engine",
                "auto",
                "--cache",
                cache.to_str().unwrap(),
                "--quiet",
                "--threads",
                "1",
                "--out",
                dir.join(out).to_str().unwrap(),
            ],
        )
    };
    let first = run("out1");
    assert_eq!(exit_code(&first), 0, "{}", stderr(&first));
    let art = |out: &str| {
        jsonio::parse(
            &std::fs::read_to_string(
                dir.join(out)
                    .join(format!("00_tuned-run_0550nm_{}.json", hash12(&spec))),
            )
            .unwrap(),
        )
        .unwrap()
    };
    let v1 = art("out1");
    let t1 = v1.get("tuned").expect("tuned provenance present");
    assert_eq!(t1.get("cache_hit").unwrap().as_bool(), Some(false));
    assert!(v1
        .get("engine")
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with("mwd("));

    let second = run("out2");
    assert_eq!(exit_code(&second), 0, "{}", stderr(&second));
    let v2 = art("out2");
    let t2 = v2.get("tuned").unwrap();
    assert_eq!(t2.get("cache_hit").unwrap().as_bool(), Some(true));
    assert_eq!(t2.get("native_probes").unwrap().as_f64(), Some(0.0));
    assert_eq!(
        t1.get("config").unwrap().as_str(),
        t2.get("config").unwrap().as_str()
    );
    // Tuning must not change the physics: identical energies bitwise.
    assert_eq!(
        v1.get("energy").unwrap().as_f64().unwrap().to_bits(),
        v2.get("energy").unwrap().as_f64().unwrap().to_bits()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_scenario_files_fail_with_exit_code_2() {
    let dir = temp_dir("malformed");
    let path = dir.join("broken.toml");
    std::fs::write(&path, "name = \"broken\"\n[grid]\nnx = \"four\"\n").unwrap();
    let out = mwd(&dir, &["run", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2);
    assert!(
        stderr(&out).contains("broken.toml"),
        "error names the file: {}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------- serving

/// Minimal raw HTTP client for the serve tests (one request per
/// connection, as the daemon requires).
fn http(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn serve_answers_jobs_dedupes_and_drains_on_sigterm() {
    use std::io::BufRead;
    let dir = temp_dir("serve");
    let spec_path = write_spec(&dir, "served");
    let spec_toml = std::fs::read_to_string(&spec_path).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_mwd"))
        .current_dir(&dir)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--out",
            "store",
            "--cache",
            "tune_cache.json",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("mwd serve starts");
    let mut reader = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut addr = String::new();
    let mut first_lines = String::new();
    for _ in 0..10 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        first_lines.push_str(&line);
        if let Some(rest) = line.trim().strip_prefix("listening on http://") {
            addr = rest.to_string();
            break;
        }
    }
    assert!(!addr.is_empty(), "no listening line in:\n{first_lines}");
    // Collect the rest of stdout (the drain summary) concurrently.
    let tail = std::thread::spawn(move || {
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
        rest
    });

    let (status, body) = http(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200, "{body}");

    // Submit, poll to completion, fetch the artifact.
    let (status, body) = http(&addr, "POST", "/jobs", spec_toml.as_bytes());
    assert_eq!(status, 202, "{body}");
    let sub = jsonio::parse(&body).unwrap();
    let job = sub.get("job").unwrap().as_str().unwrap().to_string();
    let key = sub.get("key").unwrap().as_str().unwrap().to_string();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        assert!(std::time::Instant::now() < deadline, "job never finished");
        let (s, b) = http(&addr, "GET", &format!("/jobs/{job}"), b"");
        assert_eq!(s, 200, "{b}");
        let state = jsonio::parse(&b)
            .unwrap()
            .get("state")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        if state == "done" {
            break;
        }
        assert!(state == "queued" || state == "running", "{b}");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let (status, artifact) = http(&addr, "GET", &format!("/jobs/{job}/result"), b"");
    assert_eq!(status, 200);

    // The identical spec is served from the store, byte-identical.
    let (status, body) = http(&addr, "POST", "/jobs", spec_toml.as_bytes());
    assert_eq!(status, 200, "{body}");
    let dup = jsonio::parse(&body).unwrap();
    assert_eq!(dup.get("status").unwrap().as_str(), Some("cached"));
    let (status, cached) = http(&addr, "GET", &format!("/results/{key}"), b"");
    assert_eq!(status, 200);
    assert_eq!(cached, artifact);

    // SIGTERM drains: exit code 0, a summary line, artifacts on disk.
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .output()
        .unwrap();
    assert!(kill.status.success());
    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited {status:?}");
    let rest = tail.join().unwrap();
    assert!(rest.contains("served"), "missing summary in:\n{rest}");
    assert!(
        dir.join("store").join(format!("{key}.json")).is_file(),
        "artifact persisted for the next daemon"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_sigterm_drains_and_still_writes_the_summary() {
    let dir = temp_dir("sigterm_batch");
    // Enough work that the drain usually interrupts it; the assertions
    // hold however the race lands.
    let specs: Vec<PathBuf> = (0..3)
        .map(|i| {
            let path = write_spec(&dir, &format!("drain-{i}"));
            let longer = std::fs::read_to_string(&path)
                .unwrap()
                .replace("max_periods = 1", "max_periods = 40");
            std::fs::write(&path, longer).unwrap();
            path
        })
        .collect();
    let out_dir = dir.join("out");
    let child = Command::new(env!("CARGO_BIN_EXE_mwd"))
        .current_dir(&dir)
        .args([
            "batch",
            specs[0].to_str().unwrap(),
            specs[1].to_str().unwrap(),
            specs[2].to_str().unwrap(),
            "--workers",
            "1",
            "--quiet",
            "--out",
            out_dir.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("mwd batch starts");
    // Give the process time to install its signal hook and start job 0,
    // then request the drain.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .output()
        .unwrap();
    assert!(kill.status.success());
    let out = child.wait_with_output().unwrap();
    // Exit code 0 if everything finished before the signal, 1 if jobs
    // were cancelled — never a crash/signal death.
    let code = out.status.code().expect("exited, not signalled");
    assert!(code == 0 || code == 1, "unexpected exit {code}");

    // The drain still writes the full summary: one entry per job,
    // each either completed or cancelled.
    let summary =
        jsonio::parse(&std::fs::read_to_string(out_dir.join("batch_summary.json")).unwrap())
            .unwrap();
    let jobs = summary.as_arr().expect("summary is an array");
    assert_eq!(jobs.len(), 3);
    let mut completed = 0;
    let mut cancelled = 0;
    for job in jobs {
        match job.get("error") {
            Some(JValue::Null) | None => {
                completed += 1;
                assert!(job.get("energy").unwrap().as_f64().unwrap() > 0.0);
            }
            Some(e) => {
                assert!(
                    e.as_str().unwrap().starts_with("cancelled:"),
                    "unexpected error: {e:?}"
                );
                cancelled += 1;
            }
        }
    }
    assert_eq!(completed + cancelled, 3);
    if code == 1 {
        assert!(cancelled > 0, "failure exit implies cancelled jobs");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
