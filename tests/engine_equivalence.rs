//! Cross-crate integration: the bitwise-equivalence oracle over a matrix
//! of engines, grids and thread-group shapes, plus randomized
//! property-based configurations.

use proptest::prelude::*;
use thiim_mwd::field::{norms, GridDims, State};
use thiim_mwd::kernels::{run_naive, step_spatial_mt, SpatialConfig};
use thiim_mwd::mwd::{run_mwd, MwdConfig, TgShape};

fn filled(dims: GridDims, seed: u64) -> State {
    let mut s = State::zeros(dims);
    s.fields.fill_deterministic(seed);
    s.coeffs.fill_deterministic(seed ^ 0xdead);
    s
}

#[test]
fn all_engines_agree_bitwise_on_a_nontrivial_problem() {
    let dims = GridDims::new(10, 14, 11);
    let steps = 7;
    let mut reference = filled(dims, 101);
    let mut spatial = reference.clone();
    let mut configs: Vec<(String, State)> = Vec::new();

    for cfg in [
        MwdConfig::one_wd(4, 1, 1),
        MwdConfig::one_wd(4, 3, 3),
        MwdConfig {
            dw: 4,
            bz: 2,
            tg: TgShape { x: 2, z: 1, c: 3 },
            groups: 1,
        },
        MwdConfig {
            dw: 8,
            bz: 4,
            tg: TgShape { x: 1, z: 2, c: 2 },
            groups: 2,
        },
        MwdConfig {
            dw: 6,
            bz: 5,
            tg: TgShape { x: 2, z: 5, c: 6 },
            groups: 1,
        },
    ] {
        configs.push((format!("{cfg:?}"), reference.clone()));
        let (_, state) = configs.last_mut().unwrap();
        run_mwd(state, &cfg, steps).unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
    }

    run_naive(&mut reference, steps);
    for _ in 0..steps {
        step_spatial_mt(&mut spatial, SpatialConfig::new(4, 3), 3);
    }
    assert!(reference.fields.bit_eq(&spatial.fields), "spatial diverged");
    for (name, state) in &configs {
        if let Some(m) = norms::first_mismatch(&state.fields, &reference.fields) {
            panic!("{name}: first mismatch {m:?}");
        }
    }
}

/// Regression matrix pinning the paper's bit-identical guarantee on the
/// `MwdConfig` corner cases most likely to be disturbed by an executor
/// refactor: the minimum diamond width, a diamond wider than the whole
/// domain (fully clipped tiles), a degenerate BZ=1 wavefront, a single
/// one-thread group, a lone multi-threaded group, every component-parallel
/// width (1/2/3/6-way), and a many-group kitchen-sink shape. Each entry
/// must reproduce `run_naive` exactly, bit for bit.
#[test]
fn mwd_corner_case_matrix_is_bit_identical_to_naive() {
    let dims = GridDims::new(6, 10, 7);
    let steps = 5;
    let seed = 2024;
    let mut reference = filled(dims, seed);
    run_naive(&mut reference, steps);

    // Diamonds wider than 2*ny are clipped down to the domain everywhere.
    let dw_max = 2 * dims.ny.next_power_of_two();
    let one = TgShape::SINGLE;
    let matrix: Vec<(&str, MwdConfig)> = vec![
        (
            "dw_min",
            MwdConfig {
                dw: 2,
                bz: 2,
                tg: one,
                groups: 2,
            },
        ),
        (
            "dw_max_clipped",
            MwdConfig {
                dw: dw_max,
                bz: 2,
                tg: one,
                groups: 2,
            },
        ),
        (
            "bz_1",
            MwdConfig {
                dw: 4,
                bz: 1,
                tg: TgShape { x: 2, z: 1, c: 1 },
                groups: 2,
            },
        ),
        ("single_thread_single_group", MwdConfig::one_wd(4, 2, 1)),
        (
            "single_group_multithread",
            MwdConfig {
                dw: 4,
                bz: 3,
                tg: TgShape { x: 2, z: 3, c: 2 },
                groups: 1,
            },
        ),
        (
            "comp_parallel_1",
            MwdConfig {
                dw: 4,
                bz: 2,
                tg: TgShape { x: 1, z: 1, c: 1 },
                groups: 2,
            },
        ),
        (
            "comp_parallel_2",
            MwdConfig {
                dw: 4,
                bz: 2,
                tg: TgShape { x: 1, z: 1, c: 2 },
                groups: 2,
            },
        ),
        (
            "comp_parallel_3",
            MwdConfig {
                dw: 4,
                bz: 2,
                tg: TgShape { x: 1, z: 1, c: 3 },
                groups: 2,
            },
        ),
        (
            "comp_parallel_6",
            MwdConfig {
                dw: 4,
                bz: 2,
                tg: TgShape { x: 1, z: 1, c: 6 },
                groups: 2,
            },
        ),
        (
            "kitchen_sink",
            MwdConfig {
                dw: 8,
                bz: 4,
                tg: TgShape { x: 2, z: 2, c: 3 },
                groups: 2,
            },
        ),
    ];

    for (name, cfg) in &matrix {
        cfg.validate(dims)
            .unwrap_or_else(|e| panic!("{name}: config invalid: {e}"));
        let mut tiled = filled(dims, seed);
        run_mwd(&mut tiled, cfg, steps).unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
        if let Some(m) = norms::first_mismatch(&tiled.fields, &reference.fields) {
            panic!("{name} ({cfg:?}): first mismatch vs naive at {m:?}");
        }
    }
}

/// Split re/im layout + SIMD dispatch oracle at the engine level: every
/// engine — which runs on whatever ISA `active_isa` selected for this
/// host — must reproduce, bit for bit, a hand-rolled sweep forced onto
/// the *scalar* kernel. This chains the engine schedules, the new plane
/// layout and the ISA dispatch into one end-to-end equivalence.
#[test]
fn engines_on_dispatched_isa_match_forced_scalar_kernels() {
    use thiim_mwd::field::Component;
    use thiim_mwd::kernels::simd::Isa;
    use thiim_mwd::kernels::{update::update_component_rows, RawGrid};

    let dims = GridDims::new(11, 9, 7);
    let steps = 4;
    let scalar = filled(dims, 424);
    for _ in 0..steps {
        let g = RawGrid::new(&scalar).with_isa(Isa::Scalar);
        for comp in Component::H_ALL.into_iter().chain(Component::E_ALL) {
            // SAFETY: single-threaded full-grid sweep (the `step_naive`
            // schedule).
            unsafe { update_component_rows(&g, comp, 0..dims.nz, 0..dims.ny, 0..dims.nx) };
        }
    }

    let mut naive = filled(dims, 424);
    run_naive(&mut naive, steps);
    assert!(
        naive.fields.bit_eq(&scalar.fields),
        "naive (isa {}) deviates from forced-scalar kernels",
        thiim_mwd::kernels::active_isa()
    );

    let mut spatial = filled(dims, 424);
    for _ in 0..steps {
        step_spatial_mt(&mut spatial, SpatialConfig::new(3, 2), 2);
    }
    assert!(spatial.fields.bit_eq(&scalar.fields), "spatial deviates");

    for cfg in [
        MwdConfig::one_wd(4, 2, 2),
        MwdConfig {
            dw: 4,
            bz: 2,
            tg: TgShape { x: 2, z: 2, c: 3 },
            groups: 1,
        },
    ] {
        let mut tiled = filled(dims, 424);
        run_mwd(&mut tiled, &cfg, steps).unwrap();
        if let Some(m) = norms::first_mismatch(&tiled.fields, &scalar.fields) {
            panic!("{cfg:?}: first mismatch vs forced-scalar {m:?}");
        }
    }
}

#[test]
fn mwd_intermediate_time_blocks_compose() {
    // Temporal blocking over nt must equal blocking over nt1 + nt2.
    let dims = GridDims::new(6, 9, 8);
    let mut once = filled(dims, 55);
    let mut split = once.clone();
    let cfg = MwdConfig {
        dw: 4,
        bz: 2,
        tg: TgShape { x: 1, z: 1, c: 2 },
        groups: 2,
    };
    run_mwd(&mut once, &cfg, 9).unwrap();
    run_mwd(&mut split, &cfg, 4).unwrap();
    run_mwd(&mut split, &cfg, 5).unwrap();
    assert!(once.fields.bit_eq(&split.fields));
}

#[test]
fn repeated_runs_are_deterministic_across_schedules() {
    // Dynamic scheduling must never change the bits, run after run.
    let dims = GridDims::new(8, 12, 8);
    let cfg = MwdConfig {
        dw: 4,
        bz: 2,
        tg: TgShape { x: 2, z: 2, c: 1 },
        groups: 2,
    };
    let proto = filled(dims, 77);
    let mut first = proto.clone();
    run_mwd(&mut first, &cfg, 6).unwrap();
    for _ in 0..4 {
        let mut again = proto.clone();
        run_mwd(&mut again, &cfg, 6).unwrap();
        assert!(first.fields.bit_eq(&again.fields));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random grids, diamond widths, wavefronts, TG shapes and thread
    /// counts: MWD must always reproduce the naive bits.
    #[test]
    fn mwd_equals_naive_for_random_configurations(
        nx in 2usize..8,
        ny in 2usize..16,
        nz in 2usize..12,
        dw_half in 1usize..5,
        bz in 1usize..6,
        steps in 1usize..8,
        groups in 1usize..4,
        tgx in 1usize..3,
        tgz in 1usize..3,
        tgc_idx in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let dims = GridDims::new(nx, ny, nz);
        let tgc = [1usize, 2, 3, 6][tgc_idx];
        let cfg = MwdConfig {
            dw: 2 * dw_half,
            bz,
            tg: TgShape { x: tgx.min(nx), z: tgz.min(bz), c: tgc },
            groups,
        };
        prop_assume!(cfg.validate(dims).is_ok());

        let mut reference = filled(dims, seed);
        let mut tiled = reference.clone();
        run_naive(&mut reference, steps);
        run_mwd(&mut tiled, &cfg, steps).expect("validated config runs");
        prop_assert!(
            tiled.fields.bit_eq(&reference.fields),
            "cfg {:?} dims {} steps {}: {:?}",
            cfg, dims, steps,
            norms::first_mismatch(&tiled.fields, &reference.fields)
        );
    }

    /// Spatial blocking with any block size and thread count is also
    /// bit-exact.
    #[test]
    fn spatial_equals_naive_for_random_blocks(
        n in 3usize..10,
        by in 1usize..12,
        bz in 1usize..12,
        threads in 1usize..5,
        steps in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let dims = GridDims::cubic(n);
        let mut reference = filled(dims, seed);
        let mut blocked = reference.clone();
        run_naive(&mut reference, steps);
        for _ in 0..steps {
            step_spatial_mt(&mut blocked, SpatialConfig::new(by, bz), threads);
        }
        prop_assert!(blocked.fields.bit_eq(&reference.fields));
    }
}
