//! Golden equivalence: the built-in scenarios must reproduce the
//! pre-refactor examples' solver setup **bit-for-bit**. The "golden"
//! side below is a verbatim transcription of what
//! `examples/solar_cell.rs` / `examples/silver_nanowire.rs` did before
//! they became thin wrappers over the scenario library; if a scenario
//! or the shared `SolverBuilder` ever drifts from that construction,
//! the field bits diverge and these tests fail.

use thiim_mwd::field::GridDims;
use thiim_mwd::scenarios::library;
use thiim_mwd::solver::{
    Engine, Material, PmlSpec, Scene, SolverConfig, SourceSpec, Sphere, ThiimSolver,
};

#[test]
fn solar_cell_scenario_is_bit_identical_to_the_pre_refactor_example() {
    // --- golden: the example's hand-rolled setup (550 nm sweep point).
    let (nx, ny, nz) = (24, 24, 72);
    let dims = GridDims::new(nx, ny, nz);
    let scene = Scene::tandem_solar_cell(nx, ny, nz);
    let mut cfg = SolverConfig::new(dims, scene, 11.0, 550.0);
    cfg.pml = Some(PmlSpec::new(8));
    cfg.source = Some(SourceSpec::x_polarized(nz - 12, 1.0));
    let mut golden = ThiimSolver::new(cfg);

    // --- scenario route: the same workload as declarative data.
    let spec = library::solar_cell();
    let jobs = spec.jobs();
    let job = jobs
        .iter()
        .find(|j| j.lambda_nm == 550.0)
        .expect("the sweep covers 550 nm");
    assert_eq!(job.lambda_cells, 11.0);
    let mut scenario = spec.build_solver(job).expect("builtin builds");

    assert_eq!(
        golden.back_iteration_cells, scenario.back_iteration_cells,
        "coefficient assembly must agree"
    );
    assert_eq!(golden.omega.to_bits(), scenario.omega.to_bits());
    assert_eq!(golden.tau.to_bits(), scenario.tau.to_bits());

    // Step both through the example's engine; bits must stay equal.
    golden.step_n(&Engine::NaivePeriodicXY, 5).unwrap();
    scenario.step_n(&Engine::NaivePeriodicXY, 5).unwrap();
    assert!(
        golden.fields().bit_eq(scenario.fields()),
        "scenario route diverged from the pre-refactor example"
    );
}

#[test]
fn silver_nanowire_scenario_is_bit_identical_to_the_pre_refactor_example() {
    // --- golden: the example's `make_scene(24)` and config, verbatim.
    let n = 24usize;
    let dims = GridDims::new(n, n, 2 * n);
    let mut scene = Scene::vacuum();
    let ag = scene.add_material(Material::silver());
    let r = n as f64 * 0.12;
    for j in 0..n {
        scene.spheres.push(Sphere {
            center: [n as f64 / 2.0, j as f64 + 0.5, n as f64 * 0.45],
            radius: r,
            material: ag,
        });
    }
    let mut cfg = SolverConfig::new(dims, scene, 10.0, 550.0);
    cfg.pml = Some(PmlSpec::new(6));
    cfg.source = Some(SourceSpec::x_polarized(2 * n - 10, 1.0));
    let mut golden = ThiimSolver::new(cfg);

    // --- scenario route.
    let spec = library::silver_nanowire();
    let jobs = spec.jobs();
    let mut scenario = spec.build_solver(&jobs[0]).expect("builtin builds");

    assert_eq!(golden.back_iteration_cells, scenario.back_iteration_cells);
    golden.step_n(&Engine::NaivePeriodicXY, 5).unwrap();
    scenario.step_n(&Engine::NaivePeriodicXY, 5).unwrap();
    assert!(
        golden.fields().bit_eq(scenario.fields()),
        "scenario route diverged from the pre-refactor example"
    );
}
