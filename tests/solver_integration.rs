//! Integration: the physics layer driving the optimized engines, and the
//! end-to-end claims that make THIIM + MWD a usable production solver.

use thiim_mwd::field::{norms, GridDims};
use thiim_mwd::kernels::SpatialConfig;
use thiim_mwd::mwd::{MwdConfig, TgShape};
use thiim_mwd::solver::{
    analysis, Engine, Material, PmlSpec, Scene, SolverConfig, SourceSpec, ThiimSolver,
};

fn wave_config(dims: GridDims, scene: Scene) -> SolverConfig {
    let mut cfg = SolverConfig::new(dims, scene, 10.0, 550.0);
    cfg.pml = Some(PmlSpec::new(6));
    cfg.source = Some(SourceSpec::x_polarized(dims.nz - 10, 1.0));
    cfg
}

#[test]
fn every_engine_advances_the_same_physics_bitwise() {
    let dims = GridDims::new(6, 8, 24);
    let mut scene = Scene::vacuum();
    let g = scene.add_material(Material::glass());
    scene
        .layers
        .push(thiim_mwd::solver::Layer::flat(g, 4.0, 12.0));
    let cfg = wave_config(dims, scene);

    let engines: Vec<(&str, Engine)> = vec![
        (
            "spatial",
            Engine::Spatial {
                cfg: SpatialConfig::new(3, 8),
                threads: 2,
            },
        ),
        (
            "mwd",
            Engine::Mwd(MwdConfig {
                dw: 4,
                bz: 2,
                tg: TgShape { x: 1, z: 2, c: 2 },
                groups: 1,
            }),
        ),
        (
            "mwd_groups",
            Engine::Mwd(MwdConfig {
                dw: 4,
                bz: 1,
                tg: TgShape { x: 1, z: 1, c: 3 },
                groups: 2,
            }),
        ),
    ];

    let mut reference = ThiimSolver::new(cfg.clone());
    reference.step_n(&Engine::Naive, 30).unwrap();
    for (name, engine) in engines {
        let mut other = ThiimSolver::new(cfg.clone());
        other.step_n(&engine, 30).unwrap();
        assert!(
            reference.fields().bit_eq(other.fields()),
            "{name}: {:?}",
            norms::first_mismatch(reference.fields(), other.fields())
        );
    }
}

#[test]
fn tandem_cell_runs_on_the_mwd_engine() {
    // The real workload: the Fig. 1 stack, PML, silver back reflector
    // (back iteration), stepped with temporal blocking.
    let (nx, ny, nz) = (8, 12, 36);
    let dims = GridDims::new(nx, ny, nz);
    let scene = Scene::tandem_solar_cell(nx, ny, nz);
    let cfg = wave_config(dims, scene.clone());
    let mut solver = ThiimSolver::new(cfg);
    assert!(solver.back_iteration_cells > 0);

    let mwd = Engine::Mwd(MwdConfig {
        dw: 4,
        bz: 2,
        tg: TgShape { x: 1, z: 1, c: 2 },
        groups: 2,
    });
    solver.step_n(&mwd, 4 * solver.steps_per_period()).unwrap();

    let energy = solver.state.fields.energy();
    assert!(energy.is_finite() && energy > 0.0, "energy {energy}");
    let absorbed = analysis::absorption_in_slab(
        solver.fields(),
        &scene,
        550.0,
        solver.omega,
        (0.2 * nz as f64) as usize,
        (0.62 * nz as f64) as usize,
    );
    assert!(absorbed > 0.0, "junctions must absorb");
}

#[test]
fn absorbed_power_is_bounded_by_incident_flux() {
    // Global energy sanity: the power absorbed in a lossy slab cannot
    // exceed the flux entering it through the vacuum above (within the
    // tolerance of an imperfectly converged state). The absorber must be
    // optically resolvable: TCO (n = 1.9) at lambda = 16 cells gives an
    // in-medium wavelength of ~8.4 cells; high-index silicon at short
    // lambda would sit in the grid's numerical stop band and reflect
    // everything.
    let dims = GridDims::new(6, 6, 48);
    let mut scene = Scene::vacuum();
    let tco = scene.add_material(Material::tco());
    // Absorber in the lower third; source sits in vacuum above it.
    scene
        .layers
        .push(thiim_mwd::solver::Layer::flat(tco, 0.0, 16.0));
    let mut cfg = SolverConfig::new(dims, scene.clone(), 16.0, 550.0);
    cfg.pml = Some(PmlSpec::new(6));
    cfg.source = Some(SourceSpec::x_polarized(38, 1.0));
    let mut solver = ThiimSolver::new(cfg);
    solver
        .run_to_convergence(&Engine::NaivePeriodicXY, 2e-2, 80)
        .unwrap();
    // Net downward flux in the vacuum gap, averaged over half a
    // wavelength of planes to wash out staggered-grid standing-wave
    // artifacts.
    let planes: Vec<usize> = (22..30).collect();
    let down = -planes
        .iter()
        .map(|&z| analysis::poynting_z(solver.fields(), z))
        .sum::<f64>()
        / planes.len() as f64;
    let absorbed =
        analysis::absorption_in_slab(solver.fields(), &scene, 550.0, solver.omega, 0, 16);
    assert!(down > 0.0, "flux must flow toward the absorber, got {down}");
    assert!(absorbed > 0.0, "the slab must absorb");
    assert!(
        absorbed <= down * 1.5,
        "absorption {absorbed} cannot exceed incident flux {down}"
    );
}

#[test]
fn glass_slab_reflects_less_than_silver_mirror() {
    // Physics sanity across materials: a silver mirror returns nearly all
    // of the incident flux, a glass interface only a few percent.
    let dims = GridDims::new(6, 6, 48);
    let run = |material: Material| -> f64 {
        let mut scene = Scene::vacuum();
        let id = scene.add_material(material);
        scene
            .layers
            .push(thiim_mwd::solver::Layer::flat(id, 0.0, 14.0));
        let cfg = wave_config(dims, scene);
        let mut solver = ThiimSolver::new(cfg);
        solver
            .run_to_convergence(&Engine::NaivePeriodicXY, 2e-2, 50)
            .unwrap();
        // Net downward flux above the slab: incident minus reflected.
        -analysis::poynting_z(solver.fields(), 24)
    };
    let through_toward_glass = run(Material::glass());
    let through_toward_silver = run(Material::silver());
    assert!(
        through_toward_silver < 0.35 * through_toward_glass.abs().max(1e-12),
        "silver must reflect far more: net flux {through_toward_silver} vs glass {through_toward_glass}"
    );
}
