//! Integration: the auto-tuner's choices actually run, and its
//! paper-scale choices reproduce the cache-block-sharing story.

use em_bench::figures::tune_point;
use thiim_mwd::field::{GridDims, State};
use thiim_mwd::kernels::run_naive;
use thiim_mwd::models::MachineSpec;
use thiim_mwd::mwd::run_mwd;
use thiim_mwd::tuner::{autotune, CacheWindow, NativeEvaluator, SearchSpace};

#[test]
fn natively_tuned_configuration_runs_and_matches_naive() {
    let dims = GridDims::new(8, 12, 10);
    let threads = 2;
    let mut space = SearchSpace::default_for(threads);
    space.dw = vec![2, 4];
    space.bz = vec![1, 2];
    let hsw = MachineSpec::HASWELL_E5_2699_V3;
    let mut ev = NativeEvaluator::new(dims, 2);
    let window = CacheWindow {
        lo_frac: 0.0,
        hi_frac: f64::INFINITY,
    };
    let result = autotune(&space, dims, &hsw, threads, window, &mut ev).expect("tuning succeeds");
    assert!(result.best_score > 0.0);

    // The winner must execute correctly.
    let mut reference = State::zeros(dims);
    reference.fields.fill_deterministic(5);
    reference.coeffs.fill_deterministic(6);
    let mut tuned = reference.clone();
    run_naive(&mut reference, 4);
    run_mwd(&mut tuned, &result.best, 4).expect("tuned config runs");
    assert!(tuned.fields.bit_eq(&reference.fields));
}

#[test]
fn paper_scale_tuning_prefers_shared_blocks_at_high_thread_counts() {
    // The central Sec. III-C claim reproduced through the tuner: on the
    // 18-core Haswell at paper grids, the best configuration shares
    // cache blocks (TG > 1) and affords Dw >= 8, while the best 1WD
    // configuration is stuck at small diamonds.
    let dims = GridDims::cubic(480);
    let mwd = tune_point(dims, 18, None);
    let one_wd = tune_point(dims, 18, Some(&[1]));
    assert!(mwd.tg.size() >= 3, "tuned MWD must share blocks: {mwd:?}");
    assert!(mwd.dw >= 8, "shared blocks afford large diamonds: {mwd:?}");
    assert!(one_wd.dw <= 4, "18 private blocks cannot: {one_wd:?}");

    // At one thread both collapse to the same choice (groups = 1).
    let single = tune_point(dims, 1, None);
    assert_eq!(single.groups, 1);
}

#[test]
fn tuned_diamond_grows_with_available_cache_share() {
    // Fig. 6d's mechanism: fewer concurrent blocks => larger diamonds.
    let dims = GridDims::cubic(384);
    let dw_at = |tg: usize| tune_point(dims, 18, Some(&[tg])).dw;
    assert!(dw_at(18) >= dw_at(6));
    assert!(dw_at(6) >= dw_at(1));
}
