//! # thiim-mwd — umbrella crate
//!
//! Reproduction of Malas et al., *"Optimization of an Electromagnetics
//! Code with Multicore Wavefront Diamond Blocking and Multi-dimensional
//! Intra-Tile Parallelization"* (2016). Re-exports the workspace crates
//! under one roof and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! Layer map (see DESIGN.md for the full inventory):
//!
//! - [`field`]: complex split-field storage (40 arrays, 640 B/cell);
//! - [`kernels`]: the THIIM component updates (paper Listings 1-2) and
//!   reference engines;
//! - [`mwd`]: diamond/wavefront temporal blocking with thread groups —
//!   the paper's contribution;
//! - [`memsim`]: simulated memory hierarchy standing in for LIKWID;
//! - [`models`]: the paper's analytic models (Eqs. 8-12);
//! - [`tuner`]: the cache-model-guided auto-tuner;
//! - [`solver`]: the solar-cell optics application (materials, PML,
//!   back iteration, plane-wave source);
//! - [`scenarios`]: declarative workload specs, the built-in scenario
//!   catalog and the concurrent batch runner behind the `mwd` CLI;
//! - [`dist`]: distributed solves — z-axis domain decomposition over
//!   worker processes with overlapped halo exchange, bit-identical to
//!   the single-process solver;
//! - [`service`]: the `mwd serve` HTTP job daemon — content-addressed
//!   result cache, admission-controlled scheduling, graceful drain;
//! - [`json`]: the shared JSON value type every artifact, report,
//!   cache and API document uses;
//! - [`obs`]: zero-dep telemetry — structured spans (`--trace` Chrome
//!   trace export) and the metric registry behind `GET /metrics`.
//!
//! ## Quickstart
//!
//! ```
//! use thiim_mwd::field::{GridDims, State};
//! use thiim_mwd::kernels::run_naive;
//! use thiim_mwd::mwd::{run_mwd, MwdConfig};
//!
//! let dims = GridDims::cubic(8);
//! let mut a = State::zeros(dims);
//! a.fields.fill_deterministic(1);
//! a.coeffs.fill_deterministic(2);
//! let mut b = a.clone();
//!
//! run_naive(&mut a, 4);
//! run_mwd(&mut b, &MwdConfig::one_wd(4, 2, 2), 4).unwrap();
//! assert!(a.fields.bit_eq(&b.fields)); // MWD is bit-identical
//! ```

pub use autotune as tuner;
pub use em_dist as dist;
pub use em_field as field;
pub use em_json as json;
pub use em_kernels as kernels;
pub use em_obs as obs;
pub use em_scenarios as scenarios;
pub use em_service as service;
pub use em_solver as solver;
pub use mem_sim as memsim;
pub use mwd_core as mwd;
pub use perf_models as models;
