//! `mwd` — the scenario CLI.
//!
//! ```text
//! mwd list [--names]
//! mwd show <scenario>
//! mwd run <scenario>... [--engine K] [--threads N] [--tune] [--dry-run]
//! mwd batch [<scenario>... | --all] [--workers N] [--engine K]
//!           [--threads N] [--tune] [--cache FILE] [--dry-run] [--out DIR]
//! mwd tune [<scenario>... | --all] [--force] [--dry-run] [--cache FILE]
//! mwd serve [--addr HOST:PORT] [--workers N] [--threads N]
//!           [--queue-depth N] [--out DIR] [--cache FILE] [--refine K]
//! ```
//!
//! A `<scenario>` is a built-in name (`mwd list`) or a path to a
//! scenario TOML file. `run` executes its scenarios sequentially;
//! `batch` fans them out over a bounded worker pool that shares the
//! host's thread budget with each job's engine threads. `tune` fills
//! the persistent per-host tuning cache that `--tune` (and
//! `engine = "auto"` specs) resolve MWD configurations from. `serve`
//! runs the long-lived HTTP job daemon with a content-addressed result
//! store on top of the same machinery.
//!
//! `run`, `batch` and `serve` drain gracefully on SIGINT/SIGTERM:
//! in-flight jobs finish, artifacts/summaries are written, and the
//! tuning cache is persisted.

use std::path::PathBuf;
use std::process::ExitCode;
use thiim_mwd::scenarios::runner::{run_batch, BatchOptions, BatchReport, TunePlan};
use thiim_mwd::scenarios::spec::EngineDecl;
use thiim_mwd::scenarios::{library, ScenarioSpec};
use thiim_mwd::tuner::{self, ResolveOptions, TuneCache, TuneKey};

const USAGE: &str = "mwd — declarative THIIM scenario runner

USAGE:
    mwd list [--names]                  list built-in scenarios
    mwd show <scenario>                 print a scenario as TOML
    mwd run <scenario>... [options]     run scenarios sequentially
    mwd batch [<scenario>...] [options] run scenarios on a worker pool
    mwd tune [<scenario>...] [options]  fill the per-host tuning cache
    mwd serve [options]                 run the HTTP job daemon
    mwd gen <list|emit|run|fuzz>        seeded scenario generators
    mwd dist run <scenario>... [options] distributed solve (z-slab workers)
    mwd help                            this text

SCENARIOS:
    a built-in name (see `mwd list`) or a path to a scenario .toml file;
    `batch`/`tune` with no scenarios (or with --all) use the whole catalog

OPTIONS:
    --engine <kind>    override every job's engine: auto, naive,
                       naive-periodic-xy, spatial, mwd, mwd-periodic-x
    --threads <n>      engine threads per job (default: budget share)
    --workers <n>      batch worker-pool size (default: thread budget)
    --tune             resolve MWD-family engines through the tuning cache
    --cache <file>     tuning-cache path (default: results/tune_cache.json;
                       implies --tune for run/batch)
    --force            tune: retune even when the cache has an answer
    --refine <k>       tune: natively probe the top k candidates (default 2)
    --dry-run          validate and plan without stepping any solver
                       (tune: report hits/misses without searching)
    --out <dir>        artifact directory (default: results/scenarios;
                       serve: the content-addressed result store,
                       default results/service_store)
    --trace <file>     run/batch: write a Chrome trace-event JSON of the
                       run (per-worker job spans + per-thread-group MWD
                       phase spans); load it in Perfetto or chrome://tracing
    --quiet            suppress per-job status lines

GEN (seeded scenario generators; same (family, seed) => same spec):
    mwd gen list                        the generator families
    mwd gen emit --family F --seed S    print the generated spec TOML
    mwd gen run  --family F --seed S    generate and solve one spec
    mwd gen fuzz [--count N] [--seed S] differential fuzz: each case must
                                        validate, roundtrip, solve without
                                        NaN/panic and be bit-identical
                                        naive-vs-MWD; failures print a
                                        one-line (family, seed) repro
    --family <f[,f...]>  multilayer, rough-interface, nanoparticle,
                         nanowire (fuzz default: all, cycled)
    --seed <n>           base seed (default 42); fuzz case i uses seed+i
    --count <n>          fuzz cases (default 8)
    --steps <n>          solver steps per fuzz case (default 6)
    --full               draw from full-size parameter ranges instead of
                         the tiny smoke-test grids
    --corrupt            harness self-test: corrupt the MWD side and
                         require every case to be flagged
    --out <dir>          fuzz: write failing spec TOML here
                         run: artifact directory

DIST (z-axis domain decomposition; artifacts are bit-identical to a
     single-process `mwd run` of the same spec):
    mwd dist run <scenario>...          solve each scenario across worker
                                        processes, one contiguous z slab
                                        each, halo planes exchanged over
                                        local sockets
    --workers <n>        worker processes (default: the spec's `workers`
                         key; the flag overrides without changing the
                         spec hash)
    --threads <n>        engine threads across the job (default: host
                         budget), split evenly over workers
    --deadline-secs <n>  wall-clock budget; on expiry workers drain and
                         the job reports `timeout:`
    --out/--trace/--quiet/--chaos       as for `mwd run` (--chaos injects
                                        faults into the halo wire)
    (`mwd dist worker` is the internal worker entry point, spawned by
    the coordinator; it is not meant to be invoked by hand)

SERVE OPTIONS:
    --addr <host:port>  bind address (default 127.0.0.1:7171; port 0
                        picks a free port, printed on startup)
    --workers <n>       concurrent jobs (default: min(2, host threads))
    --threads <n>       engine threads per job (default: budget share)
    --queue-depth <n>   queued-job cap before 429 (default 32)
    --refine <k>        native probes per auto-tuning miss (default 0)
    --memory-store      keep results in memory only (no --out directory)
    --io-timeout-secs <n>  total wall-clock budget per request, first
                        byte to last (default 10; requests that blow it
                        are answered 408 and counted in /metrics as
                        em_conn_timeouts_total)
    --conn-model <m>    connection plane: `event-loop` (epoll +
                        HTTP/1.1 keep-alive; Linux default) or
                        `blocking` (thread per connection, one request
                        per connection)
    --max-connections <n>  concurrent-connection cap; accepts pause at
                        the cap and resume as connections close
                        (default 1024)
    --chaos <plan>      deterministic fault injection, e.g.
                        `seed=42,panic=0.05,slow=0.2:1500,disk-error=0.05,
                        truncate=0.05,bit-flip=0.05,conn-drop=0.1`
                        (testing only; injected-fault counts appear in
                        /metrics as em_injected_faults)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "list" => cmd_list(&args[1..]),
        "show" => cmd_show(&args[1..]),
        "run" => cmd_run_or_batch(&args[1..], false),
        "batch" => cmd_run_or_batch(&args[1..], true),
        "tune" => cmd_tune(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "gen" => cmd_gen(&args[1..]),
        "dist" => cmd_dist(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`; try `mwd help`")),
    }
}

fn cmd_list(args: &[String]) -> Result<ExitCode, String> {
    let names_only = match args {
        [] => false,
        [flag] if flag == "--names" => true,
        _ => return Err("usage: mwd list [--names]".to_string()),
    };
    for spec in library::builtins() {
        if names_only {
            println!("{}", spec.name);
        } else {
            println!("{}", spec.summary());
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_show(args: &[String]) -> Result<ExitCode, String> {
    let [name] = args else {
        return Err("usage: mwd show <scenario>".to_string());
    };
    let spec = resolve_scenario(name)?;
    spec.validate()?;
    print!("{}", spec.to_toml_string());
    Ok(ExitCode::SUCCESS)
}

struct CliOpts {
    scenarios: Vec<String>,
    all: bool,
    engine: Option<String>,
    threads: Option<usize>,
    workers: Option<usize>,
    dry_run: bool,
    out: Option<PathBuf>,
    quiet: bool,
    tune: bool,
    cache: Option<PathBuf>,
    force: bool,
    refine: Option<usize>,
    addr: Option<String>,
    queue_depth: Option<usize>,
    memory_store: bool,
    trace: Option<PathBuf>,
    io_timeout_secs: Option<u64>,
    conn_model: Option<em_service::ConnModel>,
    max_connections: Option<usize>,
    chaos: Option<String>,
    deadline_secs: Option<u64>,
}

fn parse_opts(args: &[String]) -> Result<CliOpts, String> {
    let mut o = CliOpts {
        scenarios: Vec::new(),
        all: false,
        engine: None,
        threads: None,
        workers: None,
        dry_run: false,
        out: None,
        quiet: false,
        tune: false,
        cache: None,
        force: false,
        refine: None,
        addr: None,
        queue_depth: None,
        memory_store: false,
        trace: None,
        io_timeout_secs: None,
        conn_model: None,
        max_connections: None,
        chaos: None,
        deadline_secs: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let mut count = |flag: &str| -> Result<usize, String> {
            value(flag)?
                .parse()
                .map_err(|_| format!("{flag} needs a non-negative integer"))
        };
        match a.as_str() {
            "--all" => o.all = true,
            "--dry-run" => o.dry_run = true,
            "--quiet" => o.quiet = true,
            "--tune" => o.tune = true,
            "--force" => o.force = true,
            "--engine" => o.engine = Some(value("--engine")?),
            "--threads" => o.threads = Some(count("--threads")?),
            "--workers" => o.workers = Some(count("--workers")?),
            "--refine" => o.refine = Some(count("--refine")?),
            "--cache" => o.cache = Some(PathBuf::from(value("--cache")?)),
            "--out" => o.out = Some(PathBuf::from(value("--out")?)),
            "--addr" => o.addr = Some(value("--addr")?),
            "--trace" => o.trace = Some(PathBuf::from(value("--trace")?)),
            "--queue-depth" => o.queue_depth = Some(count("--queue-depth")?),
            "--memory-store" => o.memory_store = true,
            "--io-timeout-secs" => {
                o.io_timeout_secs = Some(
                    value("--io-timeout-secs")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or("--io-timeout-secs needs a positive integer")?,
                )
            }
            "--conn-model" => o.conn_model = Some(value("--conn-model")?.parse()?),
            "--max-connections" => {
                o.max_connections = Some(
                    value("--max-connections")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or("--max-connections needs a positive integer")?,
                )
            }
            "--chaos" => o.chaos = Some(value("--chaos")?),
            "--deadline-secs" => {
                o.deadline_secs = Some(
                    value("--deadline-secs")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or("--deadline-secs needs a positive integer")?,
                )
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option `{flag}`; try `mwd help`"))
            }
            name => o.scenarios.push(name.to_string()),
        }
    }
    if o.threads == Some(0) {
        return Err("--threads needs a positive integer".to_string());
    }
    if o.workers == Some(0) {
        return Err("--workers needs a positive integer".to_string());
    }
    Ok(o)
}

fn resolve_scenario(name: &str) -> Result<ScenarioSpec, String> {
    if let Some(spec) = library::builtin(name) {
        return Ok(spec);
    }
    let path = std::path::Path::new(name);
    if path.is_file() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        return ScenarioSpec::from_toml_str(&text).map_err(|e| format!("{}: {e}", path.display()));
    }
    Err(format!(
        "`{name}` is neither a built-in scenario nor a scenario file; \
         built-ins: {}",
        library::builtin_names().join(", ")
    ))
}

fn cmd_run_or_batch(args: &[String], batch: bool) -> Result<ExitCode, String> {
    let o = parse_opts(args)?;
    let specs: Vec<ScenarioSpec> = if o.scenarios.is_empty() || o.all {
        if !batch && !o.all {
            return Err("usage: mwd run <scenario>... (or `mwd run --all`)".to_string());
        }
        library::builtins()
    } else {
        o.scenarios
            .iter()
            .map(|n| resolve_scenario(n))
            .collect::<Result<_, _>>()?
    };

    // `--cache` implies `--tune`: naming the cache only makes sense if
    // the batch resolves configurations through it.
    let tune = (o.tune || o.cache.is_some()).then(|| TunePlan {
        cache_path: Some(o.cache.clone().unwrap_or_else(tuner::default_cache_path)),
        force: o.force,
        refine_top: o.refine.unwrap_or(0),
    });
    // SIGINT/SIGTERM drain the batch: workers finish their current job,
    // queued jobs are recorded as cancelled, artifacts and the batch
    // summary are still written (the tuning cache is persisted before
    // any job steps).
    let stop = em_service::shutdown::hooked_flag();
    let recorder = if o.trace.is_some() {
        thiim_mwd::obs::Recorder::enabled()
    } else {
        thiim_mwd::obs::Recorder::disabled()
    };
    let opts = BatchOptions {
        // `run` means "execute in order": a single worker; `batch` sizes
        // the pool from the shared thread budget unless overridden.
        workers: if batch { o.workers.unwrap_or(0) } else { 1 },
        engine_kind: o.engine.clone(),
        threads: o.threads,
        dry_run: o.dry_run,
        out_dir: Some(o.out.unwrap_or_else(|| PathBuf::from("results/scenarios"))),
        budget: mwd_core::ThreadBudget::host(),
        quiet: o.quiet,
        tune,
        stop: Some(stop),
        cancel: None,
        trace: recorder.clone(),
    };
    if let Some(kind) = &o.engine {
        // Fail on typos before any validation output scrolls past.
        EngineDecl::auto(kind, 1)?;
    }

    let report = run_batch(&specs, &opts)?;
    if let Some(path) = &o.trace {
        let trace = recorder.drain();
        trace
            .write_chrome(path)
            .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
        println!(
            "trace: {} span(s) on {} thread(s) -> {}{}",
            trace.spans.len(),
            trace.threads.len(),
            path.display(),
            if trace.dropped > 0 {
                format!(" ({} span(s) dropped by ring buffers)", trace.dropped)
            } else {
                String::new()
            }
        );
        for p in trace.phase_totals() {
            println!(
                "  phase {:<16} {:>8} span(s) {:>10.3} ms total",
                p.name,
                p.count,
                p.total_us / 1e3
            );
        }
    }
    print_report(&report, o.dry_run);
    if report.cancelled() > 0 {
        println!(
            "interrupted: {} job(s) cancelled before starting (completed work was kept)",
            report.cancelled()
        );
    }
    if report.failures() > 0 {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// `mwd serve`: the long-running HTTP job daemon.
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let o = parse_opts(args)?;
    if !o.scenarios.is_empty()
        || o.all
        || o.engine.is_some()
        || o.tune
        || o.force
        || o.dry_run
        || o.trace.is_some()
    {
        return Err(
            "`mwd serve` takes no scenarios and no --all/--engine/--tune/--force/--dry-run/--trace \
             (profiling a daemon is `GET /metrics`)"
                .to_string(),
        );
    }
    if o.memory_store && o.out.is_some() {
        return Err("--memory-store and --out are mutually exclusive".to_string());
    }
    let cfg = em_service::ServerConfig {
        addr: o.addr.unwrap_or_else(|| "127.0.0.1:7171".to_string()),
        scheduler: em_service::SchedulerConfig {
            workers: o.workers.unwrap_or(0),
            threads_per_job: o.threads.unwrap_or(0),
            queue_depth: o.queue_depth.unwrap_or(32),
            budget: mwd_core::ThreadBudget::host(),
            refine_top: o.refine.unwrap_or(0),
            ..Default::default()
        },
        store_dir: if o.memory_store {
            None
        } else {
            Some(
                o.out
                    .unwrap_or_else(|| PathBuf::from("results/service_store")),
            )
        },
        cache_path: Some(o.cache.unwrap_or_else(tuner::default_cache_path)),
        io_timeout_secs: o.io_timeout_secs.unwrap_or(10),
        conn_model: o.conn_model.unwrap_or_default(),
        max_connections: o.max_connections.unwrap_or(1024),
        chaos: o
            .chaos
            .as_deref()
            .map(|p| em_faults::FaultPlan::parse(p).map_err(|e| format!("--chaos: {e}")))
            .transpose()?,
        quiet: o.quiet,
        limits: Default::default(),
    };
    if let Some(plan) = &cfg.chaos {
        println!("chaos plan active: {}", plan.to_compact());
    }
    let server = em_service::Server::bind(&cfg)?;
    em_service::shutdown::install(server.stop_flag());
    let sched = server.scheduler();
    // The exact bound address first (tests and scripts parse this line
    // to find a port-0 daemon), then the capacity contract.
    println!("listening on http://{}", server.local_addr()?);
    println!(
        "capacity: {} worker(s) x {} thread(s) within a budget of {}; queue depth {}",
        sched.workers, sched.threads_per_job, sched.budget_total, sched.queue_depth
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let summary = server.run()?;
    println!(
        "served {} request(s): {} completed, {} failed, {} cancelled, {} timed out; \
         {} stored result(s), dedupe rate {:.0}%{}",
        summary.requests,
        summary.completed,
        summary.failed,
        summary.cancelled,
        summary.timed_out,
        summary.store_entries,
        100.0 * summary.dedupe_rate,
        if summary.cache_saved {
            "; tuning cache saved"
        } else {
            ""
        }
    );
    Ok(ExitCode::SUCCESS)
}

/// `mwd tune`: resolve (and persist) the tuned MWD configuration for
/// each scenario's grid, reporting cache hits and misses.
fn cmd_tune(args: &[String]) -> Result<ExitCode, String> {
    let o = parse_opts(args)?;
    if o.engine.is_some() || o.workers.is_some() || o.out.is_some() || o.trace.is_some() {
        return Err("`mwd tune` does not take --engine/--workers/--out/--trace".to_string());
    }
    let specs: Vec<ScenarioSpec> = if o.scenarios.is_empty() || o.all {
        library::builtins()
    } else {
        o.scenarios
            .iter()
            .map(|n| resolve_scenario(n))
            .collect::<Result<_, _>>()?
    };
    for spec in &specs {
        spec.validate()?;
    }

    let cache_path = o.cache.unwrap_or_else(tuner::default_cache_path);
    let mut cache = TuneCache::load(&cache_path)?;
    // Tune for the thread count a sequential `mwd run --tune` would
    // grant each job: the full host budget (or the explicit override).
    let threads = o
        .threads
        .unwrap_or_else(|| mwd_core::ThreadBudget::host().total());

    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut probes = 0usize;
    for spec in &specs {
        // Periodic-x MWD engines tune under their own kind; everything
        // else (including `auto` and the naive references) gets the
        // plain MWD engine tuned for its grid.
        let engine_kind = match spec.engine.kind() {
            "mwd-periodic-x" => "mwd-periodic-x",
            _ => "mwd",
        };
        let ropts = ResolveOptions {
            refine_top: o.refine.unwrap_or(2),
            force: o.force,
            ..Default::default()
        };
        // Fingerprint under the same machine model `resolve` tunes with.
        let key = TuneKey::for_host(&ropts.machine, spec.dims(), engine_kind, threads);
        if o.dry_run {
            let status = match cache.get(&key) {
                Some(e) => format!("hit     {} ({})", e.config.to_compact(), e.stage.as_str()),
                None => "miss    (would tune)".to_string(),
            };
            if !o.quiet {
                println!(
                    "{:<18} {:>11}  {:<14} t{:<3} {status}",
                    spec.name,
                    format!("{}", spec.dims()),
                    engine_kind,
                    threads
                );
            }
            continue;
        }
        let r = tuner::resolve(&mut cache, &key, &ropts)
            .map_err(|e| format!("scenario `{}`: {e}", spec.name))?;
        if r.cache_hit {
            hits += 1;
        } else {
            misses += 1;
        }
        probes += r.native_probes;
        if !o.quiet {
            println!(
                "{:<18} {:>11}  {:<14} t{:<3} {:<5} {:<8} {:<32} {:>8.1} MLUP/s",
                spec.name,
                format!("{}", spec.dims()),
                engine_kind,
                threads,
                if r.cache_hit { "hit" } else { "miss" },
                r.stage.as_str(),
                r.config.to_compact(),
                r.score_mlups,
            );
        }
    }

    if o.dry_run {
        println!(
            "dry run: {} scenario(s) against {} ({} entries)",
            specs.len(),
            cache_path.display(),
            cache.len()
        );
        return Ok(ExitCode::SUCCESS);
    }
    cache.save()?;
    println!(
        "tuned {} scenario(s): {hits} cache hit(s), {misses} miss(es), \
         {probes} native probe(s); cache {} ({} entries)",
        specs.len(),
        cache_path.display(),
        cache.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// `mwd gen`: the seeded scenario generators and the differential fuzz
/// harness. Has its own flag set (family/seed/count/steps are not
/// meaningful to the other subcommands), so it parses independently of
/// [`parse_opts`].
fn cmd_gen(args: &[String]) -> Result<ExitCode, String> {
    use thiim_mwd::scenarios::gen::{generate, run_fuzz, Family, FuzzOptions, GenParams};

    let Some(sub) = args.first() else {
        return Err("usage: mwd gen <list|emit|run|fuzz> [options]; try `mwd help`".to_string());
    };
    if sub == "list" {
        for f in Family::ALL {
            println!("{:<16} {}", f.name(), f.description());
        }
        return Ok(ExitCode::SUCCESS);
    }

    // gen-specific flags.
    let mut families: Vec<Family> = Vec::new();
    let mut seed: u64 = 42;
    let mut count: usize = 8;
    let mut steps: usize = 6;
    let mut full = false;
    let mut corrupt = false;
    let mut quiet = false;
    let mut out: Option<PathBuf> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--family" => {
                for name in value("--family")?.split(',') {
                    families.push(Family::from_name(name.trim()).ok_or_else(|| {
                        format!(
                            "unknown family `{name}` (known: {})",
                            Family::ALL
                                .iter()
                                .map(|f| f.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })?);
                }
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs a non-negative integer".to_string())?;
            }
            "--count" => {
                count = value("--count")?
                    .parse()
                    .map_err(|_| "--count needs a positive integer".to_string())?;
            }
            "--steps" => {
                steps = value("--steps")?
                    .parse()
                    .map_err(|_| "--steps needs a positive integer".to_string())?;
            }
            "--full" => full = true,
            "--corrupt" => corrupt = true,
            "--quiet" => quiet = true,
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            other => {
                return Err(format!(
                    "unknown `mwd gen` option `{other}`; try `mwd help`"
                ))
            }
        }
    }
    let params = if full {
        GenParams::default()
    } else {
        GenParams::tiny()
    };

    match sub.as_str() {
        "emit" | "run" => {
            let [family] = families.as_slice() else {
                return Err(format!(
                    "usage: mwd gen {sub} --family <one family> --seed <n>"
                ));
            };
            let spec = generate(*family, seed, &params)?;
            if sub == "emit" {
                print!("{}", spec.to_toml_string());
                return Ok(ExitCode::SUCCESS);
            }
            let stop = em_service::shutdown::hooked_flag();
            let report = run_batch(
                &[spec],
                &BatchOptions {
                    workers: 1,
                    out_dir: Some(out.unwrap_or_else(|| PathBuf::from("results/scenarios"))),
                    budget: mwd_core::ThreadBudget::host(),
                    quiet,
                    stop: Some(stop),
                    ..Default::default()
                },
            )?;
            print_report(&report, false);
            Ok(if report.failures() > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "fuzz" => {
            let opts = FuzzOptions {
                count,
                seed,
                families: if families.is_empty() {
                    Family::ALL.to_vec()
                } else {
                    families
                },
                params,
                steps,
                corrupt,
                out_dir: out,
            };
            let report = run_fuzz(&opts)?;
            for f in &report.failures {
                eprintln!("FAIL {}", f.summary());
                eprintln!("     {}", f.repro_line());
            }
            if !quiet || !report.ok() {
                println!(
                    "gen fuzz: {} case(s), {} failure(s){}",
                    report.cases,
                    report.failures.len(),
                    if corrupt { " (corrupt mode)" } else { "" }
                );
            }
            Ok(if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        other => Err(format!(
            "unknown `mwd gen` subcommand `{other}`; try `mwd help`"
        )),
    }
}

/// `mwd dist`: distributed solves (and the internal worker entry).
fn cmd_dist(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_dist_run(&args[1..]),
        Some("worker") => cmd_dist_worker(&args[1..]),
        _ => Err("usage: mwd dist run <scenario>... [options]; try `mwd help`".to_string()),
    }
}

fn cmd_dist_run(args: &[String]) -> Result<ExitCode, String> {
    use thiim_mwd::dist::{run_dist, DistOptions, Launcher};

    let o = parse_opts(args)?;
    if o.all || o.engine.is_some() || o.tune || o.force || o.dry_run || o.cache.is_some() {
        return Err(
            "`mwd dist run` does not take --all/--engine/--tune/--force/--dry-run/--cache"
                .to_string(),
        );
    }
    if o.scenarios.is_empty() {
        return Err("usage: mwd dist run <scenario>... [options]".to_string());
    }
    let specs: Vec<ScenarioSpec> = o
        .scenarios
        .iter()
        .map(|n| resolve_scenario(n))
        .collect::<Result<_, _>>()?;

    // SIGINT/SIGTERM drain: the coordinator aborts every worker over
    // the control protocol, workers exit cleanly, and whatever
    // completed is still written. An optional wall-clock deadline
    // rides the same token.
    let stop = em_service::shutdown::hooked_flag();
    let deadline = o
        .deadline_secs
        .map(|s| std::time::Instant::now() + std::time::Duration::from_secs(s));
    let cancel = mwd_core::CancelToken::with_flag(stop, deadline);
    let recorder = if o.trace.is_some() {
        thiim_mwd::obs::Recorder::enabled()
    } else {
        thiim_mwd::obs::Recorder::disabled()
    };

    let t0 = std::time::Instant::now();
    let mut outcomes = Vec::new();
    let mut workers_used = 1;
    for spec in &specs {
        // The flag overrides the spec's `workers` knob without
        // mutating the spec, so the artifact's spec hash matches a
        // single-process run byte for byte.
        let workers = o.workers.unwrap_or_else(|| spec.workers.max(1));
        workers_used = workers_used.max(workers);
        let opts = DistOptions {
            workers,
            threads: o
                .threads
                .unwrap_or_else(|| mwd_core::ThreadBudget::host().total()),
            launcher: Launcher::Process {
                chaos: o.chaos.clone(),
            },
            cancel: cancel.clone(),
            trace: recorder.clone(),
            trace_parent: 0,
            registry: None,
            faults: None,
        };
        outcomes.extend(run_dist(spec, &opts)?);
    }
    // Renumber into one flat batch, mirroring `run_batch`'s
    // deterministic job order across specs.
    for (i, out) in outcomes.iter_mut().enumerate() {
        out.job = i;
    }
    let mut report = BatchReport {
        outcomes,
        workers: workers_used,
        threads_per_job: o
            .threads
            .unwrap_or_else(|| mwd_core::ThreadBudget::host().total()),
        max_in_flight: 1,
        wall_secs: t0.elapsed().as_secs_f64(),
    };
    let dir = o.out.unwrap_or_else(|| PathBuf::from("results/scenarios"));
    thiim_mwd::scenarios::write_artifacts(&dir, &mut report.outcomes)?;

    if let Some(path) = &o.trace {
        let trace = recorder.drain();
        trace
            .write_chrome(path)
            .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
        println!(
            "trace: {} span(s) on {} thread(s) -> {}",
            trace.spans.len(),
            trace.threads.len(),
            path.display()
        );
    }
    print_report(&report, false);
    if report.cancelled() > 0 {
        println!(
            "interrupted: {} job(s) drained cleanly (completed work was kept)",
            report.cancelled()
        );
    }
    // A SIGTERM drain is a clean exit; anything else with an error —
    // including a deadline expiry — is a failure.
    if report.failures() > report.cancelled() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// The worker side of `mwd dist run` — spawned by the coordinator,
/// never by hand.
fn cmd_dist_worker(args: &[String]) -> Result<ExitCode, String> {
    use thiim_mwd::dist::{run_worker, WorkerConfig};

    let mut connect: Option<String> = None;
    let mut index: Option<usize> = None;
    let mut chaos: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--index" => {
                index = Some(
                    value("--index")?
                        .parse()
                        .map_err(|_| "--index needs a non-negative integer".to_string())?,
                )
            }
            "--chaos" => chaos = Some(value("--chaos")?),
            other => return Err(format!("unknown `mwd dist worker` option `{other}`")),
        }
    }
    let cfg = WorkerConfig {
        connect: connect.ok_or("mwd dist worker needs --connect <addr>")?,
        index: index.ok_or("mwd dist worker needs --index <n>")?,
        faults: chaos
            .as_deref()
            .map(|p| em_faults::FaultPlan::parse(p).map_err(|e| format!("--chaos: {e}")))
            .transpose()?
            .map(|plan| std::sync::Arc::new(em_faults::FaultInjector::new(plan))),
    };
    match run_worker(&cfg) {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("dist worker {}: {e}", cfg.index);
            Ok(ExitCode::FAILURE)
        }
    }
}

fn print_report(report: &BatchReport, dry_run: bool) {
    println!();
    println!(
        "{:>3}  {:<18} {:>7}  {:<34} {:>9} {:>7}  status",
        "job", "scenario", "lambda", "engine", "periods", "wall"
    );
    for o in &report.outcomes {
        let status = match (&o.error, o.dry_run, o.converged) {
            (Some(e), _, _) => format!("FAILED: {e}"),
            (None, true, _) => "dry-run ok".to_string(),
            (None, false, true) => "converged".to_string(),
            (None, false, false) => "not converged".to_string(),
        };
        println!(
            "{:>3}  {:<18} {:>4} nm  {:<34} {:>9} {:>6.2}s  {}",
            o.job, o.scenario, o.lambda_nm, o.engine, o.periods, o.wall_secs, status
        );
    }
    println!();
    if dry_run {
        println!(
            "dry run: {} jobs validated on {} worker(s)",
            report.outcomes.len(),
            report.workers
        );
    } else {
        println!(
            "{} jobs on {} worker(s) x {} thread(s), peak {} in flight, {:.2}s wall, {} failed",
            report.outcomes.len(),
            report.workers,
            report.threads_per_job,
            report.max_in_flight,
            report.wall_secs,
            report.failures()
        );
        if let Some(a) = report.outcomes.iter().find_map(|o| o.artifact.as_ref()) {
            println!(
                "artifacts: {}",
                a.parent().unwrap_or(std::path::Path::new(".")).display()
            );
        }
    }
    let (hits, misses, probes) = report.tune_stats();
    if hits + misses > 0 {
        println!("tuning: {hits} cache hit(s), {misses} miss(es), {probes} native probe(s)");
    }
}
